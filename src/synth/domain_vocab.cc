#include "synth/domain_vocab.h"

#include <cassert>

namespace mass::synth {

namespace {

const std::vector<std::string> kTravel = {
    "travel",    "trip",      "journey",   "flight",    "airline",
    "hotel",     "resort",    "beach",     "island",    "mountain",
    "hiking",    "backpack",  "passport",  "visa",      "itinerary",
    "tourist",   "tourism",   "sightseeing","landmark", "museum",
    "cruise",    "luggage",   "airport",   "destination","vacation",
    "holiday",   "adventure", "explore",   "guidebook", "souvenir",
    "booking",   "hostel",    "train",     "railway",   "roadtrip",
    "camping",   "safari",    "temple",    "cathedral", "canyon",
    "waterfall", "scenery",   "postcard",  "jetlag",    "customs",
    "embassy",   "currency",  "abroad",    "overseas",  "wanderlust",
};

const std::vector<std::string> kComputer = {
    "computer",  "software",  "hardware",  "programming","algorithm",
    "compiler",  "debugger",  "database",  "server",     "network",
    "linux",     "windows",   "processor", "memory",     "keyboard",
    "monitor",   "laptop",    "desktop",   "coding",     "java",
    "python",    "variable",  "function",  "pointer",    "array",
    "recursion", "thread",    "kernel",    "driver",     "firmware",
    "encryption","firewall",  "router",    "bandwidth",  "latency",
    "cache",     "binary",    "bytecode",  "opensource", "repository",
    "bug",       "patch",     "release",   "framework",  "library",
    "interface", "syntax",    "runtime",   "virtualization","cloud",
};

const std::vector<std::string> kCommunication = {
    "communication","telephone","mobile",   "wireless",  "signal",
    "antenna",   "broadcast", "radio",     "television", "satellite",
    "cellular",  "messaging", "email",     "chat",       "conference",
    "telecom",   "carrier",   "roaming",   "spectrum",   "frequency",
    "modem",     "broadband", "fiber",     "protocol",   "voip",
    "texting",   "smartphone","handset",   "subscriber", "operator",
    "transmission","receiver","microphone","speaker",    "headset",
    "voicemail", "dialtone",  "hotline",   "switchboard","pager",
    "telegraph", "morse",     "relay",     "repeater",   "coverage",
    "connectivity","handover","basestation","uplink",    "downlink",
};

const std::vector<std::string> kEducation = {
    "education", "school",    "university","college",   "student",
    "teacher",   "professor", "classroom", "curriculum","syllabus",
    "lecture",   "homework",  "assignment","exam",      "grade",
    "scholarship","tuition",  "degree",    "diploma",   "graduate",
    "undergraduate","kindergarten","literacy","tutoring","mentor",
    "pedagogy",  "learning",  "teaching",  "study",     "textbook",
    "library",   "campus",    "dormitory", "semester",  "enrollment",
    "admission", "faculty",   "dean",      "thesis",    "dissertation",
    "quiz",      "workshop",  "seminar",   "academy",   "principal",
    "preschool", "alumni",    "transcript","accreditation","coursework",
};

const std::vector<std::string> kEconomics = {
    "economics", "economy",   "market",    "stock",     "investment",
    "inflation", "recession", "depression","interest",  "banking",
    "finance",   "fiscal",    "monetary",  "currency",  "trade",
    "export",    "import",    "tariff",    "gdp",       "unemployment",
    "investor",  "dividend",  "portfolio", "bond",      "equity",
    "mortgage",  "loan",      "credit",    "debt",      "deficit",
    "surplus",   "taxation",  "revenue",   "profit",    "earnings",
    "commodity", "futures",   "hedge",     "speculation","stimulus",
    "bailout",   "subsidy",   "entrepreneur","startup", "merger",
    "acquisition","shareholder","bankruptcy","liquidity","valuation",
};

const std::vector<std::string> kMilitary = {
    "military",  "army",      "navy",      "airforce",  "soldier",
    "officer",   "general",   "sergeant",  "battalion", "regiment",
    "infantry",  "artillery", "cavalry",   "tank",      "missile",
    "radar",     "submarine", "destroyer", "carrier",   "fighter",
    "bomber",    "helicopter","weapon",    "ammunition","grenade",
    "rifle",     "armor",     "barracks",  "deployment","battle",
    "combat",    "warfare",   "strategy",  "tactics",   "reconnaissance",
    "intelligence","fortress","garrison",  "ceasefire", "treaty",
    "alliance",  "veteran",   "conscription","drill",   "maneuver",
    "logistics", "camouflage","bunker",    "convoy",    "squadron",
};

const std::vector<std::string> kSports = {
    "sports",    "football",  "basketball","baseball",  "soccer",
    "tennis",    "golf",      "hockey",    "swimming",  "running",
    "marathon",  "olympics",  "championship","tournament","league",
    "playoff",   "athlete",   "coach",     "referee",   "stadium",
    "scoreboard","touchdown", "homerun",   "goalkeeper","striker",
    "quarterback","pitcher",  "batter",    "dribble",   "slamdunk",
    "racket",    "volley",    "sprint",    "relay",     "hurdle",
    "gymnastics","wrestling", "boxing",    "cycling",   "skiing",
    "snowboard", "skating",   "fitness",   "training",  "workout",
    "medal",     "trophy",    "record",    "season",    "roster",
};

const std::vector<std::string> kMedicine = {
    "medicine",  "doctor",    "nurse",     "hospital",  "clinic",
    "patient",   "diagnosis", "treatment", "therapy",   "surgery",
    "prescription","pharmacy","vaccine",   "antibiotic","symptom",
    "disease",   "infection", "virus",     "bacteria",  "immune",
    "cardiology","oncology",  "pediatrics","radiology", "anesthesia",
    "transplant","chemotherapy","dosage",  "injection", "anatomy",
    "physiology","pathology", "epidemic",  "pandemic",  "quarantine",
    "wellness",  "nutrition", "vitamin",   "cholesterol","diabetes",
    "hypertension","asthma",  "allergy",   "migraine",  "arthritis",
    "insulin",   "stethoscope","ultrasound","biopsy",   "recovery",
};

const std::vector<std::string> kArt = {
    "art",       "painting",  "sculpture", "gallery",   "exhibition",
    "artist",    "canvas",    "brush",     "palette",   "portrait",
    "landscape", "abstract",  "impressionism","renaissance","baroque",
    "watercolor","oil",       "acrylic",   "sketch",    "drawing",
    "illustration","design",  "photography","ceramics", "pottery",
    "calligraphy","mural",    "fresco",    "mosaic",    "engraving",
    "etching",   "printmaking","collage",  "installation","curator",
    "masterpiece","aesthetic","composition","perspective","symmetry",
    "texture",   "pigment",   "easel",     "studio",    "museum",
    "auction",   "collector", "avantgarde","surrealism","cubism",
};

const std::vector<std::string> kPolitics = {
    "politics",  "government","election",  "campaign",  "candidate",
    "president", "senator",   "congress",  "parliament","legislation",
    "policy",    "democracy", "republic",  "constitution","amendment",
    "vote",      "ballot",    "referendum","coalition", "opposition",
    "diplomat",  "diplomacy", "embassy",   "sanction",  "summit",
    "governor",  "mayor",     "cabinet",   "ministry",  "bureaucracy",
    "lobbying",  "partisan",  "liberal",   "conservative","progressive",
    "socialism", "capitalism","ideology",  "reform",    "scandal",
    "impeachment","veto",     "filibuster","caucus",    "primary",
    "incumbent", "electorate","gerrymander","statecraft","geopolitics",
};

const std::vector<std::string> kGeneral = {
    "today",     "yesterday", "tomorrow",  "week",      "month",
    "year",      "morning",   "evening",   "night",     "weekend",
    "friend",    "family",    "people",    "person",    "world",
    "life",      "time",      "day",       "home",      "house",
    "city",      "place",     "thing",     "way",       "work",
    "idea",      "thought",   "story",     "news",      "update",
    "photo",     "picture",   "weather",   "coffee",    "dinner",
    "lunch",     "breakfast", "music",     "movie",     "book",
    "reading",   "writing",   "blog",      "post",      "share",
    "experience","moment",    "feeling",   "question",  "answer",
    "plan",      "change",    "start",     "end",       "part",
};

const std::vector<std::string> kConnectors = {
    "really",   "quite",    "very",    "just",   "maybe",  "perhaps",
    "actually", "finally",  "recently","often",  "always", "sometimes",
    "think",    "believe",  "found",   "went",   "made",   "took",
    "looked",   "talked",   "wrote",   "read",   "heard",  "learned",
    "decided",  "wanted",   "tried",   "kept",   "felt",   "saw",
};

}  // namespace

const std::vector<std::string>& DomainVocabulary(size_t d) {
  assert(d < kNumPaperDomains);
  switch (d) {
    case 0: return kTravel;
    case 1: return kComputer;
    case 2: return kCommunication;
    case 3: return kEducation;
    case 4: return kEconomics;
    case 5: return kMilitary;
    case 6: return kSports;
    case 7: return kMedicine;
    case 8: return kArt;
    default: return kPolitics;
  }
}

const std::vector<std::string>& GeneralVocabulary() { return kGeneral; }

const std::vector<std::string>& ConnectorVocabulary() { return kConnectors; }

}  // namespace mass::synth
