// Topical vocabularies for the paper's ten evaluation domains {Travel,
// Computer, Communication, Education, Economics, Military, Sports,
// Medicine, Art, Politics}, plus a domain-neutral filler vocabulary.
// The synthetic generator samples post text from these so that the naive
// Bayes analyzer faces a realistic (imperfectly separable) signal.
#pragma once

#include <string>
#include <vector>

namespace mass::synth {

/// Number of built-in domains; matches DomainSet::PaperDomains().
inline constexpr size_t kNumPaperDomains = 10;

/// Topical word list for domain `d` in paper order (0 = Travel, ...,
/// 9 = Politics). Each list has at least 40 words.
const std::vector<std::string>& DomainVocabulary(size_t d);

/// Domain-neutral filler words mixed into every document.
const std::vector<std::string>& GeneralVocabulary();

/// Words usable in any position to pad sentences (articles, verbs...).
const std::vector<std::string>& ConnectorVocabulary();

}  // namespace mass::synth
