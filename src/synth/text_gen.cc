#include "synth/text_gen.h"

#include <algorithm>

#include "synth/domain_vocab.h"

namespace mass::synth {

namespace {

const std::vector<std::string> kPositiveStems = {
    "agree", "support", "great", "excellent", "love", "helpful",
    "insightful", "thanks", "recommend", "brilliant", "wonderful",
};
const std::vector<std::string> kNegativeStems = {
    "disagree", "oppose", "wrong", "misleading", "terrible", "useless",
    "disappointing", "nonsense", "flawed", "doubt", "poor",
};

const std::string& Pick(const std::vector<std::string>& words, Rng* rng) {
  return words[rng->NextUint64(words.size())];
}

}  // namespace

TextGenerator::TextGenerator(TextGenOptions options) : options_(options) {}

std::string TextGenerator::SampleWords(const std::vector<double>& interests,
                                       size_t num_words, Rng* rng) const {
  std::string out;
  for (size_t i = 0; i < num_words; ++i) {
    if (!out.empty()) out += ' ';
    if (rng->NextBernoulli(options_.connector_fraction)) {
      out += Pick(ConnectorVocabulary(), rng);
      continue;
    }
    if (!interests.empty() && rng->NextBernoulli(options_.topical_fraction)) {
      size_t d = rng->NextDiscrete(interests);
      if (rng->NextBernoulli(options_.domain_noise)) {
        d = rng->NextUint64(kNumPaperDomains);  // off-topic leakage
      }
      if (d < kNumPaperDomains) {
        out += Pick(DomainVocabulary(d), rng);
        continue;
      }
    }
    out += Pick(GeneralVocabulary(), rng);
  }
  return out;
}

std::string TextGenerator::GeneratePost(const std::vector<double>& interests,
                                        size_t num_words, Rng* rng) const {
  return SampleWords(interests, std::max<size_t>(num_words, 3), rng);
}

std::string TextGenerator::GenerateTitle(size_t domain, Rng* rng) const {
  std::vector<double> one_hot(kNumPaperDomains, 0.0);
  if (domain < kNumPaperDomains) one_hot[domain] = 1.0;
  size_t n = 4 + rng->NextUint64(5);
  // Titles are denser in topical words than bodies.
  TextGenerator dense(TextGenOptions{.topical_fraction = 0.7,
                                     .connector_fraction = 0.1});
  return dense.SampleWords(one_hot, n, rng);
}

std::string TextGenerator::GenerateComment(size_t domain, int attitude,
                                           size_t num_words, Rng* rng) const {
  std::vector<double> one_hot(kNumPaperDomains, 0.0);
  if (domain < kNumPaperDomains) one_hot[domain] = 1.0;
  std::string body = SampleWords(one_hot, std::max<size_t>(num_words, 2), rng);
  // Inject 1-2 polarity words for non-neutral attitudes. Neutral comments
  // get none, so the lexicon analyzer reads them as neutral.
  if (attitude > 0) {
    body = Pick(kPositiveStems, rng) + " " + body;
    if (rng->NextBernoulli(0.5)) body += " " + Pick(kPositiveStems, rng);
  } else if (attitude < 0) {
    body = Pick(kNegativeStems, rng) + " " + body;
    if (rng->NextBernoulli(0.5)) body += " " + Pick(kNegativeStems, rng);
  }
  return body;
}

std::string TextGenerator::GenerateProfile(const std::vector<double>& interests,
                                           Rng* rng) const {
  std::string out = "blogger interested in";
  // Name the top-2 interest domains explicitly, then add topical words.
  std::vector<size_t> order(interests.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return interests[a] > interests[b];
  });
  for (size_t i = 0; i < order.size() && i < 2; ++i) {
    if (interests[order[i]] <= 0.0) break;
    out += ' ';
    out += Pick(DomainVocabulary(order[i]), rng);
  }
  out += ' ';
  out += SampleWords(interests, 12 + rng->NextUint64(8), rng);
  return out;
}

std::string TextGenerator::GenerateAdvertisement(size_t domain,
                                                 size_t num_words,
                                                 Rng* rng) const {
  std::vector<double> one_hot(kNumPaperDomains, 0.0);
  if (domain < kNumPaperDomains) one_hot[domain] = 1.0;
  TextGenerator dense(TextGenOptions{.topical_fraction = 0.6,
                                     .connector_fraction = 0.15});
  return dense.SampleWords(one_hot, std::max<size_t>(num_words, 4), rng);
}

std::string TextGenerator::MakeCopyPreamble(Rng* rng) {
  static const std::vector<std::string> kPreambles = {
      "reposted from source",
      "forwarded via friend originally posted",
      "reprinted excerpt courtesy of",
      "copied from original source via",
  };
  return kPreambles[rng->NextUint64(kPreambles.size())];
}

}  // namespace mass::synth
