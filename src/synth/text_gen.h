// Topical text generation for the synthetic blogosphere: posts, comments,
// profiles, and advertisements are word-sampled from domain vocabularies
// mixed with general filler, so downstream classifiers face a realistic
// signal-to-noise ratio.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "sentiment/sentiment_analyzer.h"

namespace mass::synth {

/// Text generation parameters.
struct TextGenOptions {
  /// Probability that a sampled content word is topical (from the domain
  /// vocabulary) rather than general filler.
  double topical_fraction = 0.40;
  /// Probability of inserting a connector word between content words.
  double connector_fraction = 0.25;
  /// Probability that a topical word leaks from a random *other* domain —
  /// real posts mention off-topic terms, which keeps the classification
  /// task (and the ad-routing task) from being trivially separable.
  double domain_noise = 0.12;
};

/// Generates text by sampling from the vocabularies.
class TextGenerator {
 public:
  explicit TextGenerator(TextGenOptions options = {});

  /// A post body of about `num_words` words with mixture `interests`
  /// over domains (weights need not be normalized). A single dominant
  /// domain can be expressed with a one-hot vector.
  std::string GeneratePost(const std::vector<double>& interests,
                           size_t num_words, Rng* rng) const;

  /// A short title (4-8 words) biased to domain `domain`.
  std::string GenerateTitle(size_t domain, Rng* rng) const;

  /// A comment of about `num_words` words on a post in `domain`, carrying
  /// the requested attitude: +1 positive, 0 neutral, -1 negative. The
  /// attitude is expressed through sentiment-lexicon words so the
  /// SentimentAnalyzer can recover it (with realistic noise).
  std::string GenerateComment(size_t domain, int attitude, size_t num_words,
                              Rng* rng) const;

  /// A profile paragraph mentioning the blogger's preferred domains.
  std::string GenerateProfile(const std::vector<double>& interests,
                              Rng* rng) const;

  /// An advertisement text of about `num_words` words for `domain`.
  std::string GenerateAdvertisement(size_t domain, size_t num_words,
                                    Rng* rng) const;

  /// Prepends a copy-indicator preamble ("reposted from source ...") used
  /// to mark carbon-copy posts.
  static std::string MakeCopyPreamble(Rng* rng);

 private:
  std::string SampleWords(const std::vector<double>& interests,
                          size_t num_words, Rng* rng) const;

  TextGenOptions options_;
};

}  // namespace mass::synth
