#include "synth/generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"
#include "synth/domain_vocab.h"

namespace mass::synth {

namespace {

// Expertise-biased attachment weight: experts attract links and comments
// quadratically more than lay bloggers.
double AttachWeight(const Blogger& b) {
  return 0.05 + b.true_expertise * b.true_expertise;
}

int PrimaryDomain(const Blogger& b) {
  if (b.true_interests.empty()) return -1;
  return static_cast<int>(std::max_element(b.true_interests.begin(),
                                           b.true_interests.end()) -
                          b.true_interests.begin());
}

}  // namespace

Result<Corpus> GenerateBlogosphere(const GeneratorOptions& options) {
  if (options.num_bloggers == 0) {
    return Status::InvalidArgument("num_bloggers must be positive");
  }
  if (options.num_domains == 0 || options.num_domains > kNumPaperDomains) {
    return Status::InvalidArgument(
        StrFormat("num_domains must lie in [1, %zu]", kNumPaperDomains));
  }
  if (options.homophily < 0.0 || options.homophily > 1.0) {
    return Status::InvalidArgument("homophily must lie in [0, 1]");
  }

  Rng rng(options.seed);
  TextGenerator text_gen(options.text);
  Corpus corpus;
  const size_t nd = options.num_domains;

  // ---- Bloggers ----
  for (size_t i = 0; i < options.num_bloggers; ++i) {
    Blogger b;
    b.name = StrFormat("blogger%04zu", i);
    b.url = StrFormat("http://blogosphere.example/%s", b.name.c_str());
    bool expert = rng.NextBernoulli(options.expert_fraction);
    b.true_expertise =
        expert ? rng.NextDouble(0.7, 1.0) : rng.NextDouble(0.05, 0.5);
    if (!expert && rng.NextBernoulli(options.spammer_fraction /
                                     (1.0 - options.expert_fraction))) {
      b.true_spammer = true;
      b.true_expertise = rng.NextDouble(0.05, 0.2);
    }
    b.true_interests.assign(nd, 0.0);
    size_t primary = rng.NextUint64(nd);
    if (rng.NextBernoulli(options.secondary_interest_prob) && nd > 1) {
      size_t secondary = rng.NextUint64(nd - 1);
      if (secondary >= primary) ++secondary;
      b.true_interests[primary] = 0.7;
      b.true_interests[secondary] = 0.3;
    } else {
      b.true_interests[primary] = 1.0;
    }
    b.profile = text_gen.GenerateProfile(b.true_interests, &rng);
    corpus.AddBlogger(std::move(b));
  }

  // ---- Posts ----
  // Per-blogger activity scales with expertise; calibrate the Poisson base
  // rate so the expected total matches target_posts.
  std::vector<double> activity(options.num_bloggers);
  double activity_total = 0.0;
  for (size_t i = 0; i < options.num_bloggers; ++i) {
    activity[i] = 0.4 + 1.2 * corpus.blogger(static_cast<BloggerId>(i))
                                  .true_expertise;
    activity_total += activity[i];
  }
  const double base_rate =
      static_cast<double>(options.target_posts) / activity_total;

  int64_t clock = 1'200'000'000;  // synthetic epoch
  for (size_t i = 0; i < options.num_bloggers; ++i) {
    const Blogger& author = corpus.blogger(static_cast<BloggerId>(i));
    int count = rng.NextPoisson(base_rate * activity[i]);
    bool expert = author.true_expertise >= 0.7;
    double copy_rate =
        expert ? options.copy_rate_expert : options.copy_rate_lay;
    for (int k = 0; k < count; ++k) {
      Post p;
      p.author = static_cast<BloggerId>(i);
      p.true_domain =
          static_cast<int>(rng.NextDiscrete(author.true_interests));
      p.timestamp = clock + rng.NextInt(0, 86'400 * 365);
      size_t min_w =
          expert ? options.expert_post_words_min : options.lay_post_words_min;
      size_t max_w =
          expert ? options.expert_post_words_max : options.lay_post_words_max;
      size_t words = min_w + rng.NextUint64(max_w - min_w + 1);
      std::vector<double> one_hot(nd, 0.0);
      one_hot[p.true_domain] = 1.0;
      p.title = text_gen.GenerateTitle(p.true_domain, &rng);
      p.content = text_gen.GeneratePost(one_hot, words, &rng);
      if (rng.NextBernoulli(copy_rate)) {
        p.true_copy = true;
        p.content = TextGenerator::MakeCopyPreamble(&rng) + " " + p.content;
      }
      MASS_RETURN_IF_ERROR(corpus.AddPost(std::move(p)).status());
    }
  }

  // ---- Links (the GL network) ----
  // Preferential attachment by expertise with domain homophily. Pre-bucket
  // bloggers by primary domain for homophilous target sampling.
  std::vector<std::vector<BloggerId>> by_domain(nd);
  std::vector<std::vector<double>> by_domain_weight(nd);
  std::vector<double> global_weight(options.num_bloggers);
  for (size_t i = 0; i < options.num_bloggers; ++i) {
    const Blogger& b = corpus.blogger(static_cast<BloggerId>(i));
    int d = PrimaryDomain(b);
    by_domain[d].push_back(static_cast<BloggerId>(i));
    by_domain_weight[d].push_back(AttachWeight(b));
    global_weight[i] = AttachWeight(b);
  }
  for (size_t i = 0; i < options.num_bloggers; ++i) {
    const Blogger& source = corpus.blogger(static_cast<BloggerId>(i));
    int src_domain = PrimaryDomain(source);
    int out = rng.NextPoisson(options.mean_links_per_blogger);
    std::set<BloggerId> chosen;
    for (int e = 0; e < out; ++e) {
      BloggerId target;
      if (rng.NextBernoulli(options.homophily) &&
          by_domain[src_domain].size() > 1) {
        size_t idx = rng.NextDiscrete(by_domain_weight[src_domain]);
        target = by_domain[src_domain][idx];
      } else {
        target = static_cast<BloggerId>(rng.NextDiscrete(global_weight));
      }
      if (target == static_cast<BloggerId>(i)) continue;
      if (!chosen.insert(target).second) continue;
      MASS_RETURN_IF_ERROR(corpus.AddLink(static_cast<BloggerId>(i), target));
    }
  }

  // ---- Comments ----
  // Comment volume scales with the author's expertise (influential posts
  // attract discussion); commenters are domain-affine; attitude skews
  // positive for expert authors and mixed for lay authors.
  for (PostId pid = 0; pid < corpus.num_posts(); ++pid) {
    const Post& post = corpus.post(pid);
    const Blogger& author = corpus.blogger(post.author);
    double mean = options.mean_comments_per_post *
                  (0.3 + 1.4 * author.true_expertise);
    int count = rng.NextPoisson(mean);
    size_t d = static_cast<size_t>(post.true_domain);
    for (int c = 0; c < count; ++c) {
      // Pick a commenter: homophilous w.r.t. the post's domain.
      BloggerId commenter;
      if (rng.NextBernoulli(options.homophily) && by_domain[d].size() > 1) {
        commenter = by_domain[d][rng.NextUint64(by_domain[d].size())];
      } else {
        commenter =
            static_cast<BloggerId>(rng.NextUint64(options.num_bloggers));
      }
      if (commenter == post.author) continue;  // no self-comments

      Comment cm;
      cm.post = pid;
      cm.commenter = commenter;
      cm.timestamp = post.timestamp + rng.NextInt(60, 86'400 * 14);
      double p_pos = 0.20 + 0.55 * author.true_expertise;
      double p_neg = std::max(0.05, 0.35 - 0.30 * author.true_expertise);
      if (post.true_copy) {
        // Readers resent reposted content: attitudes sour.
        p_pos *= 0.3;
        p_neg = std::min(0.85, p_neg + 0.35);
      }
      double roll = rng.NextDouble();
      if (roll < p_pos) {
        cm.true_attitude = 1;
      } else if (roll < p_pos + p_neg) {
        cm.true_attitude = -1;
      } else {
        cm.true_attitude = 0;
      }
      size_t words = 5 + rng.NextUint64(20);
      cm.text = text_gen.GenerateComment(d, cm.true_attitude, words, &rng);
      MASS_RETURN_IF_ERROR(corpus.AddComment(std::move(cm)).status());
    }
  }

  // ---- Spam comments ----
  // Spammers run a mutual-promotion ring: they shower short, mostly-
  // positive comments mainly on each other's posts (and some random
  // posts). Their volume would amplify the ring's influence through the
  // CommentScore feedback loop without the paper's TC normalization and
  // citation weighting.
  std::vector<PostId> spammer_posts;
  for (const Post& p : corpus.posts()) {
    if (corpus.blogger(p.author).true_spammer) spammer_posts.push_back(p.id);
  }
  if (corpus.num_posts() > 0) {
    for (BloggerId b = 0; b < corpus.num_bloggers(); ++b) {
      if (!corpus.blogger(b).true_spammer) continue;
      int count = rng.NextPoisson(options.spam_comments_mean);
      for (int c = 0; c < count; ++c) {
        PostId pid;
        if (!spammer_posts.empty() && rng.NextBernoulli(0.7)) {
          pid = spammer_posts[rng.NextUint64(spammer_posts.size())];
        } else {
          pid = static_cast<PostId>(rng.NextUint64(corpus.num_posts()));
        }
        if (corpus.post(pid).author == b) continue;
        Comment cm;
        cm.post = pid;
        cm.commenter = b;
        cm.timestamp = corpus.post(pid).timestamp + rng.NextInt(60, 86'400);
        cm.true_attitude = rng.NextBernoulli(0.75) ? 1 : 0;
        cm.text = text_gen.GenerateComment(
            static_cast<size_t>(corpus.post(pid).true_domain),
            cm.true_attitude, 3 + rng.NextUint64(5), &rng);
        MASS_RETURN_IF_ERROR(corpus.AddComment(std::move(cm)).status());
      }
    }
  }

  corpus.BuildIndexes();
  MASS_RETURN_IF_ERROR(corpus.Validate());
  return corpus;
}

namespace {

// O(1) preferential-attachment sampler (the classic endpoint-list trick):
// the list holds one entry per prior attachment, so a uniform draw from it
// is degree-proportional; an epsilon mix of uniform node draws keeps cold
// nodes reachable and seeds the process before any attachment exists.
class EndpointSampler {
 public:
  EndpointSampler(size_t num_nodes, double epsilon)
      : num_nodes_(num_nodes), epsilon_(epsilon) {}

  size_t Sample(Rng* rng) {
    if (endpoints_.empty() || rng->NextDouble() < epsilon_) {
      return rng->NextUint64(num_nodes_);
    }
    return endpoints_[rng->NextUint64(endpoints_.size())];
  }

  void Attach(size_t node) {
    endpoints_.push_back(static_cast<uint32_t>(node));
  }

 private:
  size_t num_nodes_;
  double epsilon_;
  std::vector<uint32_t> endpoints_;
};

}  // namespace

Result<Corpus> GenerateScaledBlogosphere(const ScaledGeneratorOptions& options) {
  if (options.num_bloggers == 0) {
    return Status::InvalidArgument("num_bloggers must be positive");
  }
  if (options.num_domains == 0 || options.num_domains > kNumPaperDomains) {
    return Status::InvalidArgument(
        StrFormat("num_domains must lie in [1, %zu]", kNumPaperDomains));
  }
  if (options.attach_epsilon <= 0.0 || options.attach_epsilon > 1.0) {
    return Status::InvalidArgument("attach_epsilon must lie in (0, 1]");
  }

  Rng rng(options.seed);
  Corpus corpus;
  const size_t nb = options.num_bloggers;
  const size_t nd = options.num_domains;

  // ---- Bloggers ----
  // Structural records: short (SSO) names, no profile text, one-hot
  // ground-truth interest. The primary domain is kept in a side array so
  // post generation never re-scans interest vectors.
  std::vector<uint8_t> primary(nb);
  for (size_t i = 0; i < nb; ++i) {
    Blogger b;
    b.name = StrFormat("b%zu", i);
    b.true_expertise = rng.NextDouble(0.05, 1.0);
    primary[i] = static_cast<uint8_t>(rng.NextUint64(nd));
    b.true_interests.assign(nd, 0.0);
    b.true_interests[primary[i]] = 1.0;
    corpus.AddBlogger(std::move(b));
  }

  // ---- Posts ----
  // Authorship is preferential: prolific bloggers get more prolific, so
  // post counts follow the heavy-tailed activity profile of a real
  // blogosphere. Timestamps increase strictly with post id.
  const int64_t epoch = 1'200'000'000;
  EndpointSampler authors(nb, options.attach_epsilon);
  for (size_t p = 0; p < options.num_posts; ++p) {
    const size_t author = authors.Sample(&rng);
    authors.Attach(author);
    Post post;
    post.author = static_cast<BloggerId>(author);
    post.true_domain = static_cast<int>(primary[author]);
    post.timestamp = epoch + static_cast<int64_t>(p);
    MASS_RETURN_IF_ERROR(corpus.AddPost(std::move(post)).status());
  }

  // ---- Links ----
  // Source walks every blogger; the target is preferential by in-degree
  // (network authority concentrates, which is exactly what GL/PageRank is
  // meant to measure). Self-links and duplicates are skipped.
  EndpointSampler link_targets(nb, options.attach_epsilon);
  std::set<BloggerId> chosen;
  for (size_t i = 0; i < nb; ++i) {
    const int out = rng.NextPoisson(options.mean_links_per_blogger);
    chosen.clear();
    for (int e = 0; e < out; ++e) {
      const size_t target = link_targets.Sample(&rng);
      if (target == i) continue;
      if (!chosen.insert(static_cast<BloggerId>(target)).second) continue;
      MASS_RETURN_IF_ERROR(
          corpus.AddLink(static_cast<BloggerId>(i),
                         static_cast<BloggerId>(target)));
      link_targets.Attach(target);
    }
  }

  // ---- Comments ----
  // Both endpoints are preferential: popular posts attract further
  // comments, and active commenters comment more. Attitudes split
  // 50/30/20 positive/neutral/negative; self-comments are skipped.
  if (options.num_posts > 0) {
    const size_t total = static_cast<size_t>(
        static_cast<double>(options.num_posts) *
        std::max(0.0, options.mean_comments_per_post));
    EndpointSampler post_targets(options.num_posts, options.attach_epsilon);
    EndpointSampler commenters(nb, options.attach_epsilon);
    for (size_t c = 0; c < total; ++c) {
      const size_t pid = post_targets.Sample(&rng);
      const size_t who = commenters.Sample(&rng);
      if (static_cast<BloggerId>(who) ==
          corpus.post(static_cast<PostId>(pid)).author) {
        continue;
      }
      post_targets.Attach(pid);
      commenters.Attach(who);
      Comment cm;
      cm.post = static_cast<PostId>(pid);
      cm.commenter = static_cast<BloggerId>(who);
      cm.timestamp = corpus.post(static_cast<PostId>(pid)).timestamp +
                     rng.NextInt(60, 86'400);
      const double roll = rng.NextDouble();
      cm.true_attitude = roll < 0.5 ? 1 : (roll < 0.8 ? 0 : -1);
      MASS_RETURN_IF_ERROR(corpus.AddComment(std::move(cm)).status());
    }
  }

  corpus.BuildIndexes();
  MASS_RETURN_IF_ERROR(corpus.Validate());
  return corpus;
}

Corpus MakeFigure1Corpus() {
  // Paper Figure 1: Amery has post1 (CS, comments from Bob and Cary) and
  // post2 (Economics, comment from Cary); Bob and Cary have their own CS
  // posts (post3, post4) with comments from the remaining bloggers; link
  // edges give Amery network authority. Domains use paper order:
  // Computer = 1, Economics = 4.
  Corpus corpus;
  auto add = [&corpus](const char* name, double expertise,
                       std::vector<double> interests) {
    Blogger b;
    b.name = name;
    b.url = std::string("http://blogosphere.example/") + name;
    b.true_expertise = expertise;
    b.true_interests = std::move(interests);
    return corpus.AddBlogger(std::move(b));
  };
  std::vector<double> cs(10, 0.0), econ(10, 0.0), cs_econ(10, 0.0);
  cs[1] = 1.0;
  econ[4] = 1.0;
  cs_econ[1] = 0.6;
  cs_econ[4] = 0.4;

  BloggerId amery = add("Amery", 0.9, cs_econ);
  BloggerId bob = add("Bob", 0.6, cs);
  BloggerId cary = add("Cary", 0.7, cs_econ);
  BloggerId dolly = add("Dolly", 0.3, cs);
  BloggerId eddie = add("Eddie", 0.4, cs);
  BloggerId helen = add("Helen", 0.35, cs);
  BloggerId jane = add("Jane", 0.3, cs);
  BloggerId leo = add("Leo", 0.25, econ);
  BloggerId michael = add("Michael", 0.45, cs);

  auto add_post = [&corpus](BloggerId author, int domain, const char* title,
                            const char* content) {
    Post p;
    p.author = author;
    p.true_domain = domain;
    p.title = title;
    p.content = content;
    return corpus.AddPost(std::move(p)).value();
  };
  PostId post1 = add_post(
      amery, 1, "programming skills in computer science",
      "a long discussion of programming skills algorithm design recursion "
      "pointers memory management compiler internals debugging techniques "
      "software architecture and code review practice for computer science "
      "students who want to master coding interviews and real projects");
  PostId post2 = add_post(
      amery, 4, "economic depression and trends",
      "an investigation of the recent economic depression possible trends "
      "in the next couple of months inflation interest rates market "
      "volatility banking policy and investment strategy under recession");
  PostId post3 = add_post(
      bob, 1, "my favorite debugging tricks",
      "notes about debugging software with breakpoints watchpoints and "
      "logging plus compiler warnings and static analysis");
  PostId post4 = add_post(
      cary, 1, "thoughts on database indexing",
      "a short piece about database indexing btrees hash tables query "
      "plans and cache friendly data structures");

  auto add_comment = [&corpus](PostId post, BloggerId commenter, int attitude,
                               const char* text) {
    Comment c;
    c.post = post;
    c.commenter = commenter;
    c.true_attitude = attitude;
    c.text = text;
    corpus.AddComment(std::move(c)).value();
  };
  add_comment(post1, bob, 1, "agree great insights on programming skills");
  add_comment(post1, cary, 1, "excellent support for these coding techniques");
  add_comment(post2, cary, 0, "the analysis covers market trends this year");
  add_comment(post3, dolly, 1, "helpful tricks thanks for sharing");
  add_comment(post3, eddie, 0, "some notes about the logging part");
  add_comment(post3, helen, 1, "great post i agree with the approach");
  add_comment(post4, jane, 1, "support this view on indexing");
  add_comment(post4, leo, -1, "disagree the section on hash tables is wrong");
  add_comment(post4, michael, 0, "what about query plan caching");

  // Link network: the smaller bloggers link to Amery, Bob and Cary.
  (void)corpus.AddLink(bob, amery);
  (void)corpus.AddLink(cary, amery);
  (void)corpus.AddLink(dolly, bob);
  (void)corpus.AddLink(eddie, bob);
  (void)corpus.AddLink(helen, bob);
  (void)corpus.AddLink(jane, cary);
  (void)corpus.AddLink(leo, cary);
  (void)corpus.AddLink(michael, cary);
  (void)corpus.AddLink(bob, cary);
  (void)corpus.AddLink(cary, bob);

  corpus.BuildIndexes();
  return corpus;
}

}  // namespace mass::synth
