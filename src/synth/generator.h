// Synthetic blogosphere generator — the reproduction's substitute for the
// paper's MSN Spaces crawl (~3000 spaces, ~40000 posts). Every stochastic
// choice is planted as ground truth on the generated entities so that the
// simulated user study (Table I) and the classifier/sentiment evaluations
// can be scored quantitatively.
#pragma once

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "model/corpus.h"
#include "synth/domain_vocab.h"
#include "synth/text_gen.h"

namespace mass::synth {

/// Generator parameters. Defaults reproduce the paper's corpus scale.
struct GeneratorOptions {
  uint64_t seed = 42;
  size_t num_bloggers = 3000;
  size_t target_posts = 40000;
  size_t num_domains = kNumPaperDomains;  ///< must be <= kNumPaperDomains

  /// Fraction of bloggers drawn as domain experts (high expertise).
  double expert_fraction = 0.12;
  /// Probability a blogger has a secondary interest domain.
  double secondary_interest_prob = 0.4;

  /// Fraction of bloggers who are comment spammers: low expertise, very
  /// high indiscriminate comment volume (mostly sycophantic positives on
  /// random posts). The citation and TC-normalization facets exist to
  /// defuse them.
  double spammer_fraction = 0.05;
  /// Mean spam comments written per spammer.
  double spam_comments_mean = 60.0;

  /// Carbon-copy post probability for lay / expert bloggers. Low-expertise
  /// bloggers reproduce content far more often.
  double copy_rate_lay = 0.30;
  double copy_rate_expert = 0.03;

  /// Mean comments per post before expertise scaling.
  double mean_comments_per_post = 2.5;
  /// Mean outgoing blogger links before expertise-biased targeting.
  double mean_links_per_blogger = 4.0;
  /// Probability that a link / comment targets a blogger sharing the
  /// source's primary domain (homophily).
  double homophily = 0.65;

  /// Post length ranges (words) for lay and expert authors.
  size_t lay_post_words_min = 30;
  size_t lay_post_words_max = 120;
  size_t expert_post_words_min = 120;
  size_t expert_post_words_max = 260;

  TextGenOptions text;
};

/// Generates a corpus (indexes built, validated).
Result<Corpus> GenerateBlogosphere(const GeneratorOptions& options);

/// Parameters of the scaled structural generator. Where GeneratorOptions
/// reproduces the paper's ~3000-space crawl with full synthetic text,
/// this one targets the million-blogger scale the sharded solver is built
/// for: entities are structural only (ground-truth domains and attitudes
/// set directly, no generated prose), and every attachment decision —
/// which blogger authors the next post, which post a comment lands on,
/// which blogger a link points at — is preferential (degree-proportional
/// via O(1) endpoint-list sampling), so the corpus shows the heavy-tailed
/// activity and in-degree skew of a real blogosphere instead of the flat
/// Poisson profile the paper-scale generator calibrates.
struct ScaledGeneratorOptions {
  uint64_t seed = 42;
  size_t num_bloggers = 1'000'000;
  size_t num_posts = 2'000'000;
  /// Expected comments per post; total comments = num_posts * this.
  double mean_comments_per_post = 2.0;
  /// Expected outgoing links per blogger (the GL network).
  double mean_links_per_blogger = 3.0;
  size_t num_domains = kNumPaperDomains;  ///< must be <= kNumPaperDomains
  /// Probability an attachment draw is uniform instead of preferential.
  /// Keeps cold entities reachable and bounds the tail exponent; must lie
  /// in (0, 1] (a pure rich-get-richer process never seeds itself).
  double attach_epsilon = 0.2;
};

/// Generates a scaled structural corpus (indexes built, validated).
/// Deterministic for a fixed option set.
Result<Corpus> GenerateScaledBlogosphere(const ScaledGeneratorOptions& options);

/// Hand-built 9-blogger corpus matching paper Figure 1 (Amery's two posts
/// in CS and Economics with comments from Bob and Cary, etc.). Used by the
/// quickstart example and bench_figure1.
Corpus MakeFigure1Corpus();

}  // namespace mass::synth
