// Umbrella header: includes the full MASS public API.
//
// For finer-grained builds include only the module headers you need; the
// layering (low to high) is:
//   common -> xml -> model -> {storage, text} -> {sentiment, classify,
//   linkanalysis} -> {synth, crawler, core} -> {analytics, recommend,
//   viz, userstudy}
#pragma once

#include "common/logging.h"
#include "common/parallel.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

#include "model/corpus.h"
#include "model/corpus_delta.h"
#include "model/corpus_merge.h"
#include "model/corpus_stats.h"
#include "model/entities.h"

#include "storage/analysis_xml.h"
#include "storage/corpus_xml.h"
#include "storage/delta_xml.h"
#include "storage/file_io.h"
#include "storage/options_xml.h"

#include "text/lexicon.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

#include "sentiment/sentiment_analyzer.h"

#include "classify/centroid_classifier.h"
#include "classify/interest_miner.h"
#include "classify/metrics.h"
#include "classify/naive_bayes.h"
#include "classify/topic_discovery.h"

#include "linkanalysis/graph.h"
#include "linkanalysis/hits.h"
#include "linkanalysis/pagerank.h"

#include "synth/generator.h"
#include "synth/text_gen.h"

#include "crawler/blog_host.h"
#include "crawler/crawler.h"
#include "crawler/delta_stream.h"
#include "crawler/synthetic_host.h"

#include "core/engine_options.h"
#include "core/influence_engine.h"
#include "core/quality.h"
#include "core/topk.h"

#include "analytics/trend_analyzer.h"

#include "recommend/baselines.h"
#include "recommend/recommender.h"

#include "viz/blogger_details.h"
#include "viz/html_export.h"
#include "viz/post_reply_network.h"

#include "userstudy/judge_panel.h"
#include "userstudy/ranking_quality.h"
#include "userstudy/replication.h"
#include "userstudy/table1.h"
