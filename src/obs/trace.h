// Stage tracer: scoped spans with parent/child nesting recorded into a
// per-run trace buffer, plus the SolveTrace the engine fills during the
// influence fixed point.
//
// The tracer targets coarse pipeline stages (roughly a dozen spans per
// analyze run), so a mutex around the span buffer is fine; the buffer is
// preallocated at BeginRun so recording a span never allocates.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mass::obs {

// One completed stage span. Times are steady-clock microseconds relative to
// the current run's BeginRun() call, so traces from a deterministic corpus
// differ only in durations, never in structure.
struct TraceSpan {
  std::string name;
  int depth = 0;        // 0 = top-level stage
  int parent = -1;      // index into the run's span list; -1 = no parent
  int64_t start_us = 0;
  int64_t duration_us = 0;
};

class StageTracer {
 public:
  StageTracer() = default;
  StageTracer(const StageTracer&) = delete;
  StageTracer& operator=(const StageTracer&) = delete;

  // Optional: record each finished span's duration into
  // "<prefix><span name>_us" histograms of `registry`.
  void SetMetrics(MetricsRegistry* registry, std::string prefix);

  // Starts a fresh trace: clears prior spans (capacity is kept) and zeroes
  // the clock. The run name labels the trace (see run_name()).
  void BeginRun(std::string_view run_name);

  // RAII span. Obtain via StageTracer::Span(); the span ends (and is
  // recorded) when the Scope is destroyed.
  class Scope {
   public:
    Scope(Scope&& other) noexcept
        : tracer_(other.tracer_), index_(other.index_) {
      other.tracer_ = nullptr;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;
    ~Scope() {
      if (tracer_) tracer_->End(index_);
    }

   private:
    friend class StageTracer;
    Scope(StageTracer* tracer, int index) : tracer_(tracer), index_(index) {}
    StageTracer* tracer_;
    int index_;
  };

  // Opens a span; the currently open innermost span (if any) becomes its
  // parent. Must be closed (Scope destroyed) in LIFO order.
  Scope Span(std::string_view name);

  // Appends an already-completed span of the given duration — for work
  // timed externally (e.g. per-shard solver kernels summed across a
  // parallel region, where RAII nesting is impossible). The span is
  // parented under the innermost open span; its start is back-dated so it
  // ends "now". Feeds the "<prefix><name>_us" histogram like a Scope span.
  void Record(std::string_view name, int64_t duration_us);

  // Completed spans of the current run, in start order.
  std::vector<TraceSpan> Spans() const;

  std::string run_name() const;

  // Spans not recorded because the per-run capacity was reached.
  uint64_t dropped() const;

 private:
  void End(int index);
  int64_t NowMicros() const;

  static constexpr size_t kMaxSpansPerRun = 256;

  mutable std::mutex mu_;
  std::string run_name_;
  std::vector<TraceSpan> spans_;
  std::vector<int> open_;  // stack of indices of open spans
  std::chrono::steady_clock::time_point run_start_ =
      std::chrono::steady_clock::now();
  uint64_t dropped_ = 0;

  MetricsRegistry* registry_ = nullptr;
  std::string metric_prefix_;
};

// Per-iteration record of the influence fixed point.
struct SolveIteration {
  int iteration = 0;       // 1-based
  double residual = 0.0;   // max |x_t - x_{t-1}| after this iteration
  double damping = 0.0;    // damping factor applied in this iteration
};

// Convergence trace of the most recent solve. Replaces the old SolveStats:
// same scalars (final_delta renamed final_residual) plus the solver path
// and the full per-iteration residual log.
struct SolveTrace {
  std::string solver_path;  // "csr", "csr-sharded", or "scalar"; empty
                            // before the first solve
  bool warm_start = false;  // seeded from a previous influence vector
  bool converged = false;
  int iterations = 0;
  double final_residual = 0.0;
  double solve_seconds = 0.0;
  int pagerank_iterations = 0;  // 0 when GL came from cache / non-PR method
  std::vector<SolveIteration> residuals;  // one entry per iteration
};

}  // namespace mass::obs
