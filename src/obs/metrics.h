// Low-overhead metrics: monotonic counters, gauges, and lock-free
// sharded histograms with fixed log-scale buckets.
//
// Design: the registry owns the storage (heap-allocated cells with stable
// addresses); call sites hold small value-type handles (Counter, Gauge,
// Histogram) that wrap a raw pointer to the cell. Handles from a disabled
// registry (MetricsRegistry::Null()) carry a null pointer, so every write
// degenerates to a single predictable branch — that is what lets benches
// measure instrumented-vs-null overhead honestly, with no virtual dispatch
// anywhere on the hot path.
//
// All writes use relaxed atomics: metrics are monotonic or last-writer-wins
// and never synchronize other data, so no fences are needed. Snapshot()
// reads with relaxed loads too; per-shard histogram totals may be briefly
// inconsistent (count vs sum) under concurrent writers, which is the usual
// metrics contract.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mass::obs {

// ---------------------------------------------------------------------------
// Cells (registry-owned storage).
// ---------------------------------------------------------------------------

struct CounterCell {
  std::atomic<uint64_t> value{0};
};

struct GaugeCell {
  // Doubles stored via bit_cast so the cell is a plain atomic word.
  std::atomic<uint64_t> bits{0};
};

// Histograms bucket by power of two: bucket 0 holds exact zeros, bucket i
// (1 <= i < kBuckets-1) holds values in [2^(i-1), 2^i), and the last bucket
// absorbs everything >= 2^(kBuckets-2). Values are unsigned — callers record
// non-negative quantities (microseconds, sizes, iteration counts).
inline constexpr int kHistogramBuckets = 32;

inline int HistogramBucketIndex(uint64_t v) {
  if (v == 0) return 0;
  const int b = std::bit_width(v);  // 1..64
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

// Lower bound of bucket i (inclusive); bucket 0 is the zero bucket, so
// bucket 1 starts at 1.
inline uint64_t HistogramBucketLowerBound(int i) {
  return i <= 0 ? 0 : (uint64_t{1} << (i - 1));
}

// Upper bound of bucket i (inclusive); UINT64_MAX for the overflow bucket.
inline uint64_t HistogramBucketUpperBound(int i) {
  if (i == 0) return 0;
  if (i >= kHistogramBuckets - 1) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

struct HistogramCell {
  // Writers spread across shards (picked per thread) so concurrent Record()
  // calls don't contend on one cache line; Snapshot() merges the shards.
  static constexpr int kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[kHistogramBuckets] = {};
  };
  Shard shards[kShards];
};

// ---------------------------------------------------------------------------
// Handles (value types held at call sites).
// ---------------------------------------------------------------------------

class Counter {
 public:
  Counter() = default;
  explicit Counter(CounterCell* cell) : cell_(cell) {}
  // const: writes go through the registry-owned cell, so handles stored in
  // otherwise-const objects (query paths) can still count.
  void Increment(uint64_t by = 1) const {
    if (cell_) cell_->value.fetch_add(by, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    return cell_ ? cell_->value.load(std::memory_order_relaxed) : 0;
  }

 private:
  CounterCell* cell_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(GaugeCell* cell) : cell_(cell) {}
  void Set(double v) const {
    if (cell_) cell_->bits.store(std::bit_cast<uint64_t>(v),
                                 std::memory_order_relaxed);
  }
  double Value() const {
    return cell_ ? std::bit_cast<double>(
                       cell_->bits.load(std::memory_order_relaxed))
                 : 0.0;
  }

 private:
  GaugeCell* cell_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(HistogramCell* cell) : cell_(cell) {}
  void Record(uint64_t v) const {
    if (!cell_) return;
    HistogramCell::Shard& s = cell_->shards[ShardIndex()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.buckets[HistogramBucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  }

 private:
  static int ShardIndex();
  HistogramCell* cell_ = nullptr;
};

// ---------------------------------------------------------------------------
// Snapshot (point-in-time copy for export / assertions).
// ---------------------------------------------------------------------------

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t buckets[kHistogramBuckets] = {};

  /// Estimate of the q-th quantile (q in [0, 1]) from the log2 buckets:
  /// locates the bucket holding the ceil(q * count)-th sample and
  /// interpolates linearly inside its [lower, upper] range. Exact for the
  /// zero bucket; the overflow bucket reports its lower bound (no finite
  /// upper edge to interpolate toward). 0 when the histogram is empty.
  /// The log2 bucketing bounds the relative error of any estimate at 2x,
  /// which is plenty for "did p99 move an order of magnitude" checks.
  double Quantile(double q) const;

  /// The serving dashboards' trio.
  double P50() const { return Quantile(0.50); }
  double P90() const { return Quantile(0.90); }
  double P99() const { return Quantile(0.99); }
};

/// Bucket-wise difference a - b for two samples of the SAME histogram
/// taken at two instants (b earlier): the distribution of what was
/// recorded in between. Used by benches and the CLI's periodic QPS/p99
/// line to report windowed percentiles from cumulative histograms.
HistogramSample HistogramDelta(const HistogramSample& a,
                               const HistogramSample& b);

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // Lookups by exact name; return nullptr when absent. Lvalue-only: the
  // pointer aims into this snapshot, so calling on a temporary (e.g.
  // reg.Snapshot().FindCounter(...)) would dangle and is a compile error.
  const CounterSample* FindCounter(std::string_view name) const&;
  const GaugeSample* FindGauge(std::string_view name) const&;
  const HistogramSample* FindHistogram(std::string_view name) const&;
  const CounterSample* FindCounter(std::string_view) const&& = delete;
  const GaugeSample* FindGauge(std::string_view) const&& = delete;
  const HistogramSample* FindHistogram(std::string_view) const&& = delete;

  // Convenience: counter value or 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
};

// Prometheus text exposition: '.' in metric names maps to '_', counters get
// a "_total" suffix if not already present, histograms emit cumulative
// "le"-labelled buckets plus _sum and _count.
std::string PrometheusText(const MetricsSnapshot& snapshot);

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Shared disabled registry: hands out null handles, records nothing.
  // Snapshot() on it is always empty. Safe to pass anywhere a registry
  // pointer is accepted.
  static MetricsRegistry* Null();

  bool enabled() const { return enabled_; }

  // Idempotent per name: repeated calls return a handle to the same cell.
  // Registering the same name as two different kinds is a programming error;
  // the registry keeps the first kind and returns a null handle for the
  // mismatched request.
  Counter GetCounter(std::string_view name);
  Gauge GetGauge(std::string_view name);
  Histogram GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered cell (names and handles stay valid). Used by
  // per-run tooling that wants a fresh slate without re-plumbing handles.
  void Reset();

 private:
  explicit MetricsRegistry(bool enabled) : enabled_(enabled) {}

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<CounterCell> counter;
    std::unique_ptr<GaugeCell> gauge;
    std::unique_ptr<HistogramCell> histogram;
  };

  Entry* GetEntry(std::string_view name, Kind kind);

  const bool enabled_ = true;
  mutable std::mutex mu_;  // guards map shape only; cells are atomic
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace mass::obs
