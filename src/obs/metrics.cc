#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace mass::obs {

namespace {

// Round-robin shard assignment: each thread gets a stable shard on first
// Record() and keeps it, spreading writers evenly without hashing.
std::atomic<uint32_t> g_next_shard{0};

}  // namespace

int Histogram::ShardIndex() {
  thread_local int shard =
      static_cast<int>(g_next_shard.fetch_add(1, std::memory_order_relaxed) %
                       HistogramCell::kShards);
  return shard;
}

const CounterSample* MetricsSnapshot::FindCounter(std::string_view name) const& {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSample* MetricsSnapshot::FindGauge(std::string_view name) const& {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSample* MetricsSnapshot::FindHistogram(
    std::string_view name) const& {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

double HistogramSample::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; ceil so q=1.0 lands on the last
  // sample and q=0.0 on the first.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (rank <= next) {
      if (i == 0) return 0.0;  // the exact-zero bucket
      const double lower =
          static_cast<double>(HistogramBucketLowerBound(i));
      if (i >= kHistogramBuckets - 1) return lower;  // overflow bucket
      const double upper = static_cast<double>(HistogramBucketUpperBound(i));
      // Position of the target inside this bucket, interpolated as if the
      // bucket's samples were spread uniformly across [lower, upper].
      const double frac = static_cast<double>(rank - cumulative) /
                          static_cast<double>(buckets[i]);
      return lower + (upper - lower) * frac;
    }
    cumulative = next;
  }
  return 0.0;  // unreachable for a consistent sample
}

HistogramSample HistogramDelta(const HistogramSample& a,
                               const HistogramSample& b) {
  // Every per-field difference clamps at 0: when the end sample is
  // *smaller* than the start (the registry was reset, or the start sample
  // came from a previous run), an unsigned subtraction would wrap to a
  // garbage near-2^64 delta. A clamped delta under-reports the interval
  // instead, which is the honest answer for a torn baseline.
  HistogramSample d;
  d.name = a.name;
  d.count = a.count >= b.count ? a.count - b.count : 0;
  d.sum = a.sum >= b.sum ? a.sum - b.sum : 0;
  uint64_t bucket_total = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[i] =
        a.buckets[i] >= b.buckets[i] ? a.buckets[i] - b.buckets[i] : 0;
    bucket_total += d.buckets[i];
  }
  // Clamping per field can leave count larger than the surviving bucket
  // mass (count shrank less than the buckets did). Cap it so the delta is
  // internally consistent — Quantile() walks the buckets against count and
  // relies on rank <= sum(buckets).
  d.count = std::min(d.count, bucket_total);
  return d;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  const CounterSample* c = FindCounter(name);
  return c ? c->value : 0;
}

MetricsRegistry* MetricsRegistry::Null() {
  static MetricsRegistry* null_registry = new MetricsRegistry(false);
  return null_registry;
}

MetricsRegistry::Entry* MetricsRegistry::GetEntry(std::string_view name,
                                                  Kind kind) {
  if (!enabled_) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(std::string(name));
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        e.counter = std::make_unique<CounterCell>();
        break;
      case Kind::kGauge:
        e.gauge = std::make_unique<GaugeCell>();
        break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<HistogramCell>();
        break;
    }
  }
  if (e.kind != kind) return nullptr;  // kind mismatch: null handle
  return &e;
}

Counter MetricsRegistry::GetCounter(std::string_view name) {
  Entry* e = GetEntry(name, Kind::kCounter);
  return Counter(e ? e->counter.get() : nullptr);
}

Gauge MetricsRegistry::GetGauge(std::string_view name) {
  Entry* e = GetEntry(name, Kind::kGauge);
  return Gauge(e ? e->gauge.get() : nullptr);
}

Histogram MetricsRegistry::GetHistogram(std::string_view name) {
  Entry* e = GetEntry(name, Kind::kHistogram);
  return Histogram(e ? e->histogram.get() : nullptr);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        snap.counters.push_back(
            {name, e.counter->value.load(std::memory_order_relaxed)});
        break;
      case Kind::kGauge:
        snap.gauges.push_back(
            {name, std::bit_cast<double>(
                       e.gauge->bits.load(std::memory_order_relaxed))});
        break;
      case Kind::kHistogram: {
        HistogramSample h;
        h.name = name;
        for (const auto& shard : e.histogram->shards) {
          h.count += shard.count.load(std::memory_order_relaxed);
          h.sum += shard.sum.load(std::memory_order_relaxed);
          for (int i = 0; i < kHistogramBuckets; ++i) {
            h.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
          }
        }
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        e.counter->value.store(0, std::memory_order_relaxed);
        break;
      case Kind::kGauge:
        e.gauge->bits.store(0, std::memory_order_relaxed);
        break;
      case Kind::kHistogram:
        for (auto& shard : e.histogram->shards) {
          shard.count.store(0, std::memory_order_relaxed);
          shard.sum.store(0, std::memory_order_relaxed);
          for (auto& b : shard.buckets) {
            b.store(0, std::memory_order_relaxed);
          }
        }
        break;
    }
  }
}

namespace {

std::string PromName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void Appendf(std::string* out, const char* fmt, auto... args) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out->append(buf);
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    std::string name = PromName(c.name);
    if (name.size() < 6 || name.compare(name.size() - 6, 6, "_total") != 0) {
      name += "_total";
    }
    Appendf(&out, "# TYPE %s counter\n", name.c_str());
    Appendf(&out, "%s %" PRIu64 "\n", name.c_str(), c.value);
  }
  for (const auto& g : snapshot.gauges) {
    std::string name = PromName(g.name);
    Appendf(&out, "# TYPE %s gauge\n", name.c_str());
    Appendf(&out, "%s %.17g\n", name.c_str(), g.value);
  }
  for (const auto& h : snapshot.histograms) {
    std::string name = PromName(h.name);
    Appendf(&out, "# TYPE %s histogram\n", name.c_str());
    uint64_t cumulative = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      cumulative += h.buckets[i];
      if (i == kHistogramBuckets - 1) {
        Appendf(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
                cumulative);
      } else if (h.buckets[i] != 0 || i == 0) {
        Appendf(&out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                name.c_str(), HistogramBucketUpperBound(i), cumulative);
      }
    }
    Appendf(&out, "%s_sum %" PRIu64 "\n", name.c_str(), h.sum);
    Appendf(&out, "%s_count %" PRIu64 "\n", name.c_str(), h.count);
    // Companion summary with interpolated quantiles: dashboards get
    // p50/p90/p99 directly instead of re-deriving them from the raw log2
    // buckets. A separate metric name because one exposition name cannot
    // be both histogram and summary.
    if (h.count > 0) {
      std::string sname = name + "_summary";
      Appendf(&out, "# TYPE %s summary\n", sname.c_str());
      Appendf(&out, "%s{quantile=\"0.5\"} %.17g\n", sname.c_str(), h.P50());
      Appendf(&out, "%s{quantile=\"0.9\"} %.17g\n", sname.c_str(), h.P90());
      Appendf(&out, "%s{quantile=\"0.99\"} %.17g\n", sname.c_str(), h.P99());
      Appendf(&out, "%s_sum %" PRIu64 "\n", sname.c_str(), h.sum);
      Appendf(&out, "%s_count %" PRIu64 "\n", sname.c_str(), h.count);
    }
  }
  return out;
}

}  // namespace mass::obs
