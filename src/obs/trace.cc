#include "obs/trace.h"

namespace mass::obs {

void StageTracer::SetMetrics(MetricsRegistry* registry, std::string prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_ = registry;
  metric_prefix_ = std::move(prefix);
}

void StageTracer::BeginRun(std::string_view run_name) {
  std::lock_guard<std::mutex> lock(mu_);
  run_name_.assign(run_name);
  spans_.clear();
  spans_.reserve(kMaxSpansPerRun);
  open_.clear();
  open_.reserve(16);
  dropped_ = 0;
  run_start_ = std::chrono::steady_clock::now();
}

int64_t StageTracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - run_start_)
      .count();
}

StageTracer::Scope StageTracer::Span(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpansPerRun) {
    ++dropped_;
    return Scope(nullptr, -1);
  }
  TraceSpan span;
  span.name.assign(name);
  span.depth = static_cast<int>(open_.size());
  span.parent = open_.empty() ? -1 : open_.back();
  span.start_us = NowMicros();
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(index);
  return Scope(this, index);
}

void StageTracer::Record(std::string_view name, int64_t duration_us) {
  if (duration_us < 0) duration_us = 0;
  MetricsRegistry* registry = nullptr;
  std::string metric_name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= kMaxSpansPerRun) {
      ++dropped_;
      return;
    }
    TraceSpan span;
    span.name.assign(name);
    // One level below the innermost open span, exactly where a Scope
    // opened and closed here would sit.
    span.depth = static_cast<int>(open_.size());
    span.parent = open_.empty() ? -1 : open_.back();
    const int64_t now = NowMicros();
    span.start_us = now > duration_us ? now - duration_us : 0;
    span.duration_us = duration_us;
    spans_.push_back(std::move(span));
    if (registry_) {
      registry = registry_;
      metric_name.assign(metric_prefix_).append(name).append("_us");
    }
  }
  if (registry) {
    registry->GetHistogram(metric_name)
        .Record(static_cast<uint64_t>(duration_us));
  }
}

void StageTracer::End(int index) {
  MetricsRegistry* registry = nullptr;
  std::string metric_name;
  int64_t duration_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (index < 0 || index >= static_cast<int>(spans_.size())) return;
    TraceSpan& span = spans_[index];
    duration_us = NowMicros() - span.start_us;
    span.duration_us = duration_us;
    // Spans close LIFO; tolerate out-of-order closes by erasing wherever the
    // index sits on the open stack.
    for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
      if (*it == index) {
        open_.erase(std::next(it).base());
        break;
      }
    }
    if (registry_) {
      registry = registry_;
      metric_name = metric_prefix_ + span.name + "_us";
    }
  }
  if (registry) {
    registry->GetHistogram(metric_name)
        .Record(static_cast<uint64_t>(duration_us < 0 ? 0 : duration_us));
  }
}

std::vector<TraceSpan> StageTracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string StageTracer::run_name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return run_name_;
}

uint64_t StageTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace mass::obs
