#include "runtime/transport.h"

#include "runtime/inproc_transport.h"
#include "runtime/pipe_transport.h"

namespace mass::runtime {

std::string_view TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProc:
      return "inproc";
    case TransportKind::kPipe:
      return "pipe";
  }
  return "inproc";
}

bool TransportKindFromName(std::string_view name, TransportKind* out) {
  if (name == "inproc") {
    *out = TransportKind::kInProc;
    return true;
  }
  if (name == "pipe") {
    *out = TransportKind::kPipe;
    return true;
  }
  return false;
}

std::unique_ptr<Transport> MakeTransport(TransportKind kind) {
  switch (kind) {
    case TransportKind::kPipe:
      return std::make_unique<PipeTransport>();
    case TransportKind::kInProc:
      break;
  }
  return std::make_unique<InProcTransport>();
}

}  // namespace mass::runtime
