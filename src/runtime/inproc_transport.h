// In-process Transport: one std::thread per shard worker, connected to
// the coordinator by a pair of single-producer/single-consumer lock-free
// ring queues (one per direction). Messages move by std::move — the
// payload bytes are never copied, so the "serialization" cost of the
// inproc path is the codec memcpy alone and doubles cross the boundary
// bit-exactly by construction.
//
// Concurrency contract (what keeps this TSan-clean): each queue has
// exactly one producer thread and one consumer thread. The producer
// writes the slot, then publishes it with a release store of `tail_`;
// the consumer observes `tail_` with an acquire load before reading the
// slot, and retires it with a release store of `head_` that the producer
// acquires before reuse. Closing is a separate flag checked only after a
// failed pop, so in-flight messages drain before Unavailable surfaces.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/transport.h"

namespace mass::runtime {

/// Fixed-capacity SPSC ring of Messages. Capacity is rounded up to a
/// power of two. TryPush/TryPop never block; Close wakes both sides.
class SpscMessageQueue {
 public:
  explicit SpscMessageQueue(size_t capacity = 64);

  /// Moves *m into the ring. False when full or closed (m is untouched).
  bool TryPush(Message* m);

  /// Moves the oldest message into *out. False when empty.
  bool TryPop(Message* out);

  void Close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  std::vector<Message> slots_;
  size_t mask_;
  // head_ = next slot to pop (consumer-owned), tail_ = next slot to push
  // (producer-owned); both only ever increase.
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
  std::atomic<bool> closed_{false};
};

/// One side of an inproc channel: sends into `out`, receives from `in`.
class InProcEndpoint : public Endpoint {
 public:
  InProcEndpoint(SpscMessageQueue* out, SpscMessageQueue* in)
      : out_(out), in_(in) {}

  Status Send(Message message, int64_t deadline_micros) override;
  Result<Message> Recv(int64_t deadline_micros) override;

  /// Closes both directions (worker exit / transport stop).
  void CloseBoth() {
    out_->Close();
    in_->Close();
  }

 private:
  SpscMessageQueue* out_;
  SpscMessageQueue* in_;
};

class InProcTransport : public Transport {
 public:
  InProcTransport() = default;
  ~InProcTransport() override { Stop(); }

  Status Start(size_t num_workers, WorkerMain worker_main) override;
  size_t num_workers() const override { return channels_.size(); }
  Endpoint* endpoint(size_t i) override {
    return i < channels_.size() ? &channels_[i]->coordinator_side : nullptr;
  }
  bool WorkerAlive(size_t i) const override;
  void Stop() override;
  std::string_view name() const override { return "inproc"; }

 private:
  // Heap-allocated so endpoints stay pinned while vectors move.
  struct Channel {
    Channel()
        : coordinator_side(&to_worker, &to_coordinator),
          worker_side(&to_coordinator, &to_worker) {}
    SpscMessageQueue to_worker;
    SpscMessageQueue to_coordinator;
    InProcEndpoint coordinator_side;
    InProcEndpoint worker_side;
  };

  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::thread> threads_;
};

}  // namespace mass::runtime
