#include "runtime/pipe_transport.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/string_util.h"

namespace mass::runtime {

namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kFrameMagic = 0x4D534652;  // "MSFR"
// A frame bigger than this is garbage, not a message: the largest real
// payload is one shard's CSR slice, and even the 1M-blogger bench stays
// far under this.
constexpr uint64_t kMaxFrameBytes = uint64_t{1} << 33;  // 8 GiB

struct FrameHeader {
  uint32_t magic;
  uint32_t type;
  uint64_t payload_bytes;
};

Clock::time_point DeadlinePoint(int64_t deadline_micros) {
  return deadline_micros > 0
             ? Clock::now() + std::chrono::microseconds(deadline_micros)
             : Clock::time_point::max();
}

// Remaining budget in milliseconds for poll(); -1 = wait forever.
int PollTimeoutMs(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) return -1;
  const auto left = deadline - Clock::now();
  if (left <= Clock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(left).count();
  // Round up so a sub-millisecond remainder still waits one tick instead
  // of spinning poll(0) in a hot loop.
  return static_cast<int>(ms) + 1;
}

}  // namespace

void FdEndpoint::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status FdEndpoint::WriteAll(const uint8_t* data, size_t size,
                            int64_t deadline_micros) {
  const auto deadline = DeadlinePoint(deadline_micros);
  size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE -> Unavailable, not
    // kill the coordinator process with SIGPIPE.
    const ssize_t n =
        ::send(fd_, data + done, size - done, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      peer_dead_ = true;
      return Status::Unavailable("pipe worker is gone (EPIPE)");
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Status::IOError(StrFormat("pipe send failed: %s",
                                       std::strerror(errno)));
    }
    struct pollfd pfd = {fd_, POLLOUT, 0};
    const int timeout = PollTimeoutMs(deadline);
    if (timeout == 0) {
      return Status::DeadlineExceeded("pipe send deadline expired");
    }
    const int r = ::poll(&pfd, 1, timeout);
    if (r < 0 && errno != EINTR) {
      return Status::IOError(StrFormat("pipe poll failed: %s",
                                       std::strerror(errno)));
    }
  }
  return Status::OK();
}

Status FdEndpoint::ReadAll(uint8_t* data, size_t size,
                           int64_t deadline_micros) {
  const auto deadline = DeadlinePoint(deadline_micros);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd_, data + done, size - done, MSG_DONTWAIT);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      peer_dead_ = true;
      return Status::Unavailable("pipe worker closed the channel (EOF)");
    }
    if (errno == ECONNRESET) {
      peer_dead_ = true;
      return Status::Unavailable("pipe worker is gone (ECONNRESET)");
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Status::IOError(StrFormat("pipe recv failed: %s",
                                       std::strerror(errno)));
    }
    struct pollfd pfd = {fd_, POLLIN, 0};
    const int timeout = PollTimeoutMs(deadline);
    if (timeout == 0) {
      return Status::DeadlineExceeded("pipe recv deadline expired");
    }
    const int r = ::poll(&pfd, 1, timeout);
    if (r < 0 && errno != EINTR) {
      return Status::IOError(StrFormat("pipe poll failed: %s",
                                       std::strerror(errno)));
    }
  }
  return Status::OK();
}

Status FdEndpoint::Send(Message message, int64_t deadline_micros) {
  if (dead()) return Status::Unavailable("pipe endpoint closed");
  FrameHeader h;
  h.magic = kFrameMagic;
  h.type = static_cast<uint32_t>(message.type);
  h.payload_bytes = message.payload.size();
  MASS_RETURN_IF_ERROR(WriteAll(reinterpret_cast<const uint8_t*>(&h),
                                sizeof(h), deadline_micros));
  return WriteAll(message.payload.data(), message.payload.size(),
                  deadline_micros);
}

Result<Message> FdEndpoint::Recv(int64_t deadline_micros) {
  if (dead()) return Status::Unavailable("pipe endpoint closed");
  FrameHeader h;
  MASS_RETURN_IF_ERROR(ReadAll(reinterpret_cast<uint8_t*>(&h), sizeof(h),
                               deadline_micros));
  if (h.magic != kFrameMagic || h.payload_bytes > kMaxFrameBytes) {
    // The stream is desynchronized; nothing after this point can be
    // trusted, so the channel is dead, not just this message.
    peer_dead_ = true;
    return Status::Corruption(
        StrFormat("bad pipe frame (magic %08x, %llu bytes)", h.magic,
                  static_cast<unsigned long long>(h.payload_bytes)));
  }
  Message m;
  m.type = static_cast<MessageType>(h.type);
  m.payload.resize(h.payload_bytes);
  MASS_RETURN_IF_ERROR(
      ReadAll(m.payload.data(), m.payload.size(), deadline_micros));
  return m;
}

Status PipeTransport::Start(size_t num_workers, WorkerMain worker_main) {
  if (!workers_.empty()) {
    return Status::InvalidArgument("PipeTransport already started");
  }
  if (num_workers == 0 || worker_main == nullptr) {
    return Status::InvalidArgument("PipeTransport needs >= 1 worker");
  }
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      const Status st = Status::Internal(
          StrFormat("socketpair failed: %s", std::strerror(errno)));
      Stop();
      return st;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      const Status st =
          Status::Internal(StrFormat("fork failed: %s", std::strerror(errno)));
      Stop();
      return st;
    }
    if (pid == 0) {
      // Child: drop every coordinator-side fd inherited from earlier
      // workers (else their EOFs never propagate), keep only our end.
      ::close(fds[0]);
      for (const Worker& w : workers_) w.endpoint->Close();
      {
        FdEndpoint ep(fds[1]);
        worker_main(i, &ep);
      }
      // _exit, not exit: the child shares the parent's atexit list and
      // buffered streams and must not run them.
      ::_exit(0);
    }
    ::close(fds[1]);
    Worker w;
    w.pid = pid;
    w.endpoint = std::make_unique<FdEndpoint>(fds[0]);
    workers_.push_back(std::move(w));
  }
  return Status::OK();
}

bool PipeTransport::WorkerAlive(size_t i) const {
  if (i >= workers_.size()) return false;
  const Worker& w = workers_[i];
  if (w.endpoint->dead()) return false;
  // Reap-and-check without blocking: a child that exited is dead even if
  // its socket has not been read since.
  int status = 0;
  return ::waitpid(w.pid, &status, WNOHANG) == 0;
}

void PipeTransport::Stop() {
  // Closing our end delivers EOF; a well-behaved worker exits its loop.
  for (Worker& w : workers_) w.endpoint->Close();
  for (Worker& w : workers_) {
    if (w.pid <= 0) continue;
    int status = 0;
    // ~2s grace for an in-flight SpMV to finish before the hammer.
    for (int spins = 0; spins < 200; ++spins) {
      const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      if (r == w.pid || r < 0) {
        w.pid = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
    }
  }
  workers_.clear();
}

}  // namespace mass::runtime
