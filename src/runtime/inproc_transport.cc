#include "runtime/inproc_transport.h"

#include <bit>
#include <chrono>

namespace mass::runtime {

namespace {

using Clock = std::chrono::steady_clock;

// Spin-then-yield wait step. The queues carry a handful of large messages
// per solver round, not a high-rate stream, so a short sleep between
// polls costs nothing measurable and keeps the idle side off the CPU.
void WaitStep() { std::this_thread::sleep_for(std::chrono::microseconds(20)); }

Clock::time_point DeadlinePoint(int64_t deadline_micros) {
  return deadline_micros > 0
             ? Clock::now() + std::chrono::microseconds(deadline_micros)
             : Clock::time_point::max();
}

}  // namespace

SpscMessageQueue::SpscMessageQueue(size_t capacity)
    : slots_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity)),
      mask_(slots_.size() - 1) {}

bool SpscMessageQueue::TryPush(Message* m) {
  if (closed()) return false;
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  const uint64_t head = head_.load(std::memory_order_acquire);
  if (tail - head >= slots_.size()) return false;  // full
  slots_[tail & mask_] = std::move(*m);
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

bool SpscMessageQueue::TryPop(Message* out) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head == tail) return false;  // empty
  *out = std::move(slots_[head & mask_]);
  head_.store(head + 1, std::memory_order_release);
  return true;
}

Status InProcEndpoint::Send(Message message, int64_t deadline_micros) {
  const auto deadline = DeadlinePoint(deadline_micros);
  while (!out_->TryPush(&message)) {
    if (out_->closed()) {
      return Status::Unavailable("inproc channel closed");
    }
    if (Clock::now() >= deadline) {
      return Status::DeadlineExceeded("inproc send deadline expired");
    }
    WaitStep();
  }
  return Status::OK();
}

Result<Message> InProcEndpoint::Recv(int64_t deadline_micros) {
  const auto deadline = DeadlinePoint(deadline_micros);
  Message m;
  while (!in_->TryPop(&m)) {
    // Drain-then-close: only report Unavailable once the queue is both
    // closed and empty, so messages sent before a close still arrive.
    if (in_->closed()) {
      return Status::Unavailable("inproc channel closed");
    }
    if (Clock::now() >= deadline) {
      return Status::DeadlineExceeded("inproc recv deadline expired");
    }
    WaitStep();
  }
  return m;
}

Status InProcTransport::Start(size_t num_workers, WorkerMain worker_main) {
  if (!channels_.empty()) {
    return Status::InvalidArgument("InProcTransport already started");
  }
  if (num_workers == 0 || worker_main == nullptr) {
    return Status::InvalidArgument("InProcTransport needs >= 1 worker");
  }
  channels_.reserve(num_workers);
  threads_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    channels_.push_back(std::make_unique<Channel>());
  }
  for (size_t i = 0; i < num_workers; ++i) {
    Channel* ch = channels_[i].get();
    threads_.emplace_back([worker_main, ch, i] {
      worker_main(i, &ch->worker_side);
      // Worker returned (shutdown or crash-by-exit): closing both queues
      // is what makes death observable as Unavailable on the other side.
      ch->worker_side.CloseBoth();
    });
  }
  return Status::OK();
}

bool InProcTransport::WorkerAlive(size_t i) const {
  if (i >= channels_.size()) return false;
  return !channels_[i]->to_coordinator.closed();
}

void InProcTransport::Stop() {
  for (auto& ch : channels_) {
    ch->to_worker.Close();
    ch->to_coordinator.Close();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  channels_.clear();
}

}  // namespace mass::runtime
