// Multi-process Transport: fork() one child per shard worker, each
// connected to the coordinator by a SOCK_STREAM socketpair. Frames are
// length-prefixed:
//
//   [u32 frame magic][u32 MessageType][u64 payload bytes][payload]
//
// written and read with poll()-driven deadlines. Payload doubles are raw
// 8-byte memcpys, so influence values cross the process boundary
// bit-exactly (same-host IPC; no endianness translation by design).
//
// Failure semantics: a dead child (EOF / EPIPE on its socket) surfaces
// as Unavailable, an expired deadline as DeadlineExceeded, and a frame
// with a bad magic or an absurd length as Corruption. Stop() closes the
// coordinator ends — workers exit their serve loop on the EOF — then
// reaps children, escalating to SIGKILL for one that ignores it.
//
// Fork caveat: Start() forks from a multi-threaded parent, which is safe
// here because the child only runs the worker loop (codec + SpMV over
// its own endpoint) and leaves via _exit(); it never touches the
// parent's locks, pools, or atexit handlers. The engine additionally
// only starts transports from its write path, when its solver pool is
// parked at a barrier.
#pragma once

#include <sys/types.h>

#include <vector>

#include "runtime/transport.h"

namespace mass::runtime {

/// Endpoint over one end of a socketpair. Used on both sides (the
/// coordinator keeps fds[0], the child keeps fds[1]).
class FdEndpoint : public Endpoint {
 public:
  explicit FdEndpoint(int fd) : fd_(fd) {}
  ~FdEndpoint() override { Close(); }

  FdEndpoint(const FdEndpoint&) = delete;
  FdEndpoint& operator=(const FdEndpoint&) = delete;

  Status Send(Message message, int64_t deadline_micros) override;
  Result<Message> Recv(int64_t deadline_micros) override;

  void Close();
  bool dead() const { return fd_ < 0 || peer_dead_; }

 private:
  Status WriteAll(const uint8_t* data, size_t size, int64_t deadline_micros);
  Status ReadAll(uint8_t* data, size_t size, int64_t deadline_micros);

  int fd_ = -1;
  bool peer_dead_ = false;
};

class PipeTransport : public Transport {
 public:
  PipeTransport() = default;
  ~PipeTransport() override { Stop(); }

  Status Start(size_t num_workers, WorkerMain worker_main) override;
  size_t num_workers() const override { return workers_.size(); }
  Endpoint* endpoint(size_t i) override {
    return i < workers_.size() ? workers_[i].endpoint.get() : nullptr;
  }
  bool WorkerAlive(size_t i) const override;
  void Stop() override;
  std::string_view name() const override { return "pipe"; }

  /// Child pid of worker `i`, -1 when out of range — lets the crash tests
  /// kill a worker out from under the coordinator.
  pid_t worker_pid(size_t i) const {
    return i < workers_.size() ? workers_[i].pid : -1;
  }

 private:
  struct Worker {
    pid_t pid = -1;
    std::unique_ptr<FdEndpoint> endpoint;  // coordinator end
  };
  std::vector<Worker> workers_;
};

}  // namespace mass::runtime
