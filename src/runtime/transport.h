// The process seam of the sharded solve: typed, length-prefixed message
// exchange between a coordinator and K shard workers, with per-operation
// deadlines. A Transport owns the worker execution contexts (threads or
// child processes) and hands the coordinator one Endpoint per worker; the
// matching worker-side Endpoint is passed to the worker entry function.
//
// Two implementations:
//
//   - InProcTransport: one std::thread per worker, connected by a pair of
//     lock-free SPSC ring queues. The default for the sharded solve —
//     same-address-space message passing, zero behavior change vs the
//     PR-7 in-process shards, and TSan-clean (the queues synchronize with
//     acquire/release on the ring indices alone).
//   - PipeTransport: fork() one child process per worker, connected by a
//     SOCK_STREAM socketpair carrying length-prefixed frames. Worker
//     death is observable (EOF -> Unavailable), which is what turns the
//     sharded solve into something that can leave the machine.
//
// Both sides speak the same contract: Send/Recv move whole Messages, a
// deadline of 0 means "wait forever" (until the peer closes), an expired
// deadline is DeadlineExceeded, and a closed/dead peer is Unavailable.
// Message payloads are opaque bytes here; the shard protocol codec
// (storage/shard_codec.h) defines what is inside them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mass::runtime {

/// Which Transport implementation carries coordinator <-> worker traffic.
/// Selected by EngineOptions::shard_transport and round-tripped through
/// options_xml as "inproc" / "pipe".
enum class TransportKind {
  kInProc,  ///< worker threads + lock-free queues (default)
  kPipe,    ///< forked worker processes + socketpairs
};

/// Stable names for TransportKind ("inproc", "pipe").
std::string_view TransportKindName(TransportKind kind);

/// Parses a TransportKind name; false on an unknown name.
bool TransportKindFromName(std::string_view name, TransportKind* out);

/// Shard-protocol message types. The numeric values are wire format
/// (PipeTransport frames carry them verbatim) — append only.
enum class MessageType : uint32_t {
  kLoadSlice = 1,        ///< coordinator -> worker: your CSR slice
  kLoadAck = 2,          ///< worker -> coordinator: slice accepted + shape
  kIterateRound = 3,     ///< coordinator -> worker: local x mirror
  kIterateResult = 4,    ///< worker -> coordinator: owned y + residual
  kSnapshotRequest = 5,  ///< coordinator -> worker: report your state
  kSnapshotResult = 6,   ///< worker -> coordinator: shard summary
  kShutdown = 7,         ///< coordinator -> worker: exit the serve loop
  kError = 8,            ///< worker -> coordinator: request rejected
};

/// One typed message. The payload encoding is the shard codec's business;
/// transports move the bytes verbatim (a double survives bit-exactly).
struct Message {
  MessageType type = MessageType::kError;
  std::vector<uint8_t> payload;
};

/// One side of a bidirectional message channel.
///
/// `deadline_micros` on both calls is a relative budget for this one
/// operation; 0 waits indefinitely (until the peer closes). Expiry
/// surfaces as DeadlineExceeded; a closed or dead peer as Unavailable.
/// Endpoints are NOT thread-safe: one thread sends/recvs per side.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  virtual Status Send(Message message, int64_t deadline_micros) = 0;
  virtual Result<Message> Recv(int64_t deadline_micros) = 0;
};

/// Worker entry point, run inside the worker's execution context (a
/// thread for InProc, a forked child for Pipe). Must not touch state
/// shared with the coordinator beyond the endpoint; for the pipe
/// transport it runs post-fork, so it must be callable without relying
/// on other live threads (the shard worker is, by construction).
using WorkerMain = std::function<void(size_t worker_index, Endpoint* endpoint)>;

/// Owns K worker contexts and the channels to them.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Launches `num_workers` workers, each running `worker_main`. Returns
  /// InvalidArgument if already started and Internal on launch failure.
  virtual Status Start(size_t num_workers, WorkerMain worker_main) = 0;

  /// Workers launched by Start (0 before Start / after Stop).
  virtual size_t num_workers() const = 0;

  /// Coordinator-side endpoint for worker `i`. Valid between Start and
  /// Stop; null when out of range or not started.
  virtual Endpoint* endpoint(size_t i) = 0;

  /// True while worker `i`'s channel has not been observed dead (worker
  /// returned, child exited, or EOF on its socket).
  virtual bool WorkerAlive(size_t i) const = 0;

  /// Tears the workers down (closing channels; pipe workers that ignore
  /// EOF are killed) and joins/reaps them. Idempotent.
  virtual void Stop() = 0;

  /// "inproc" or "pipe" — for logs, stats lines, and bench JSON.
  virtual std::string_view name() const = 0;
};

/// Factory over TransportKind.
std::unique_ptr<Transport> MakeTransport(TransportKind kind);

}  // namespace mass::runtime
