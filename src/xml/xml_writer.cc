#include "xml/xml_writer.h"

#include <cassert>
#include <cstdio>

namespace mass::xml {

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void XmlWriter::StartDocument() {
  os_ << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
}

void XmlWriter::Indent() {
  for (size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void XmlWriter::CloseStartTagIfOpen(bool for_text) {
  if (start_tag_open_) {
    os_ << ">";
    if (!for_text) os_ << "\n";
    start_tag_open_ = false;
  }
}

void XmlWriter::StartElement(std::string_view name) {
  CloseStartTagIfOpen(/*for_text=*/false);
  Indent();
  os_ << "<" << name;
  stack_.emplace_back(name);
  start_tag_open_ = true;
  last_was_text_ = false;
}

void XmlWriter::Attribute(std::string_view name, std::string_view value) {
  assert(start_tag_open_ && "Attribute() must follow StartElement()");
  os_ << " " << name << "=\"" << Escape(value) << "\"";
}

void XmlWriter::Attribute(std::string_view name, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  Attribute(name, std::string_view(buf));
}

void XmlWriter::Attribute(std::string_view name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  Attribute(name, std::string_view(buf));
}

void XmlWriter::Text(std::string_view text) {
  CloseStartTagIfOpen(/*for_text=*/true);
  os_ << Escape(text);
  last_was_text_ = true;
}

void XmlWriter::EndElement() {
  assert(!stack_.empty());
  std::string name = stack_.back();
  stack_.pop_back();
  if (start_tag_open_) {
    os_ << "/>\n";
    start_tag_open_ = false;
  } else {
    if (!last_was_text_) Indent();
    os_ << "</" << name << ">\n";
  }
  last_was_text_ = false;
}

void XmlWriter::SimpleElement(std::string_view name, std::string_view text) {
  StartElement(name);
  if (!text.empty()) Text(text);
  EndElement();
}

}  // namespace mass::xml
