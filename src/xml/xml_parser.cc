#include "xml/xml_parser.h"

#include <cctype>

#include "common/string_util.h"

namespace mass::xml {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// Guards the element stack against hostile or corrupted input (a file of
// a few hundred KB of '<a>' must fail, not exhaust memory / recursion in
// DOM consumers). Far above anything MASS writes.
constexpr size_t kMaxElementDepth = 10'000;

}  // namespace

std::string_view XmlEvent::Attr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return {};
}

bool XmlEvent::HasAttr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return true;
  }
  return false;
}

Status XmlParser::Error(const std::string& what) {
  return Status::Corruption(StrFormat("XML parse error at offset %zu: %s",
                                      pos_, what.c_str()));
}

Status XmlParser::SkipProlog() {
  // Skip whitespace, the XML declaration, comments, and processing
  // instructions before the root element.
  for (;;) {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ + 1 < input_.size() && input_[pos_] == '<' &&
        (input_[pos_ + 1] == '?')) {
      size_t end = input_.find("?>", pos_);
      if (end == std::string_view::npos) return Error("unterminated <? ... ?>");
      pos_ = end + 2;
      continue;
    }
    if (pos_ + 3 < input_.size() && input_.substr(pos_, 4) == "<!--") {
      size_t end = input_.find("-->", pos_);
      if (end == std::string_view::npos) return Error("unterminated comment");
      pos_ = end + 3;
      continue;
    }
    return Status::OK();
  }
}

Result<std::string> XmlParser::ParseName() {
  if (pos_ >= input_.size() || !IsNameStart(input_[pos_])) {
    return Error("expected name");
  }
  size_t start = pos_;
  while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
  return std::string(input_.substr(start, pos_ - start));
}

Status XmlParser::DecodeEntities(std::string_view raw, std::string* out) {
  out->clear();
  out->reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      *out += raw[i];
      continue;
    }
    size_t semi = raw.find(';', i);
    if (semi == std::string_view::npos) return Error("unterminated entity");
    std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (semi == i + 1) return Error("empty entity");
    if (ent == "amp") {
      *out += '&';
    } else if (ent == "lt") {
      *out += '<';
    } else if (ent == "gt") {
      *out += '>';
    } else if (ent == "quot") {
      *out += '"';
    } else if (ent == "apos") {
      *out += '\'';
    } else if (!ent.empty() && ent[0] == '#') {
      // Numeric character reference; we emit the raw byte for code points
      // below 128 and a UTF-8 sequence otherwise. Digits only — strtol's
      // leniency (signs, leading whitespace, trailing junk) must not let
      // malformed references through.
      const bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
      std::string_view digits = ent.substr(hex ? 2 : 1);
      if (digits.empty()) return Error("bad character reference");
      for (char d : digits) {
        const bool ok = hex ? std::isxdigit(static_cast<unsigned char>(d))
                            : std::isdigit(static_cast<unsigned char>(d));
        if (!ok) return Error("bad character reference");
      }
      long code =
          std::strtol(std::string(digits).c_str(), nullptr, hex ? 16 : 10);
      if (code <= 0 || code > 0x10FFFF) return Error("bad character reference");
      if (code < 0x80) {
        *out += static_cast<char>(code);
      } else if (code < 0x800) {
        *out += static_cast<char>(0xC0 | (code >> 6));
        *out += static_cast<char>(0x80 | (code & 0x3F));
      } else if (code < 0x10000) {
        *out += static_cast<char>(0xE0 | (code >> 12));
        *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (code & 0x3F));
      } else {
        *out += static_cast<char>(0xF0 | (code >> 18));
        *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
        *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (code & 0x3F));
      }
    } else {
      return Error("unknown entity &" + std::string(ent) + ";");
    }
    i = semi;
  }
  return Status::OK();
}

Result<std::string> XmlParser::ParseAttrValue() {
  if (pos_ >= input_.size() || (input_[pos_] != '"' && input_[pos_] != '\'')) {
    return Error("expected quoted attribute value");
  }
  char quote = input_[pos_++];
  size_t start = pos_;
  while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
  if (pos_ >= input_.size()) return Error("unterminated attribute value");
  std::string decoded;
  MASS_RETURN_IF_ERROR(
      DecodeEntities(input_.substr(start, pos_ - start), &decoded));
  ++pos_;  // closing quote
  return decoded;
}

Result<XmlEvent> XmlParser::Next() {
  if (pending_empty_end_) {
    pending_empty_end_ = false;
    XmlEvent ev;
    ev.type = XmlEventType::kEndElement;
    ev.name = pending_empty_name_;
    return ev;
  }
  if (!prolog_done_) {
    MASS_RETURN_IF_ERROR(SkipProlog());
    prolog_done_ = true;
  }

  for (;;) {
    if (pos_ >= input_.size()) {
      if (!open_.empty()) return Error("unexpected end: <" + open_.back() + "> not closed");
      XmlEvent ev;
      ev.type = XmlEventType::kEndDocument;
      return ev;
    }

    if (input_[pos_] == '<') {
      if (pos_ + 3 < input_.size() && input_.substr(pos_, 4) == "<!--") {
        size_t end = input_.find("-->", pos_);
        if (end == std::string_view::npos) return Error("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
        // End tag.
        pos_ += 2;
        MASS_ASSIGN_OR_RETURN(std::string name, ParseName());
        while (pos_ < input_.size() &&
               std::isspace(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
        if (pos_ >= input_.size() || input_[pos_] != '>') {
          return Error("expected '>' in end tag");
        }
        ++pos_;
        if (open_.empty() || open_.back() != name) {
          return Error("mismatched end tag </" + name + ">");
        }
        open_.pop_back();
        XmlEvent ev;
        ev.type = XmlEventType::kEndElement;
        ev.name = std::move(name);
        return ev;
      }
      // Start tag.
      ++pos_;
      MASS_ASSIGN_OR_RETURN(std::string name, ParseName());
      XmlEvent ev;
      ev.type = XmlEventType::kStartElement;
      ev.name = name;
      for (;;) {
        while (pos_ < input_.size() &&
               std::isspace(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
        if (pos_ >= input_.size()) return Error("unterminated start tag");
        if (input_[pos_] == '>') {
          ++pos_;
          if (open_.size() >= kMaxElementDepth) {
            return Error("element nesting too deep");
          }
          open_.push_back(name);
          return ev;
        }
        if (input_[pos_] == '/') {
          if (pos_ + 1 >= input_.size() || input_[pos_ + 1] != '>') {
            return Error("expected '/>'");
          }
          pos_ += 2;
          pending_empty_end_ = true;
          pending_empty_name_ = name;
          return ev;
        }
        MASS_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
        while (pos_ < input_.size() &&
               std::isspace(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
        if (pos_ >= input_.size() || input_[pos_] != '=') {
          return Error("expected '=' after attribute name");
        }
        ++pos_;
        while (pos_ < input_.size() &&
               std::isspace(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
        MASS_ASSIGN_OR_RETURN(std::string attr_value, ParseAttrValue());
        ev.attributes.emplace_back(std::move(attr_name), std::move(attr_value));
      }
    }

    // Text run up to the next '<'.
    size_t start = pos_;
    while (pos_ < input_.size() && input_[pos_] != '<') ++pos_;
    std::string_view raw = input_.substr(start, pos_ - start);
    if (IsAllWhitespace(raw)) continue;  // skip inter-element ws
    if (open_.empty()) {
      // Text before or after the root element used to be dropped
      // silently — a truncated-and-concatenated file would parse as a
      // partial document. Malformed input must fail loudly.
      return Error("content outside the root element");
    }
    std::string decoded;
    MASS_RETURN_IF_ERROR(DecodeEntities(raw, &decoded));
    XmlEvent ev;
    ev.type = XmlEventType::kText;
    ev.text = std::move(decoded);
    return ev;
  }
}

std::string_view XmlNode::Attr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return {};
}

bool XmlNode::HasAttr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return true;
  }
  return false;
}

const XmlNode* XmlNode::Child(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(std::string_view child_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->name == child_name) out.push_back(c.get());
  }
  return out;
}

std::string_view XmlNode::ChildText(std::string_view child_name) const {
  const XmlNode* c = Child(child_name);
  return c ? std::string_view(c->text) : std::string_view{};
}

Result<std::unique_ptr<XmlNode>> ParseDocument(std::string_view input) {
  XmlParser parser(input);
  std::unique_ptr<XmlNode> root;
  std::vector<XmlNode*> stack;
  for (;;) {
    MASS_ASSIGN_OR_RETURN(XmlEvent ev, parser.Next());
    switch (ev.type) {
      case XmlEventType::kStartElement: {
        auto node = std::make_unique<XmlNode>();
        node->name = std::move(ev.name);
        node->attributes = std::move(ev.attributes);
        XmlNode* raw = node.get();
        if (stack.empty()) {
          if (root) {
            return Status::Corruption("XML: multiple root elements");
          }
          root = std::move(node);
        } else {
          stack.back()->children.push_back(std::move(node));
        }
        stack.push_back(raw);
        break;
      }
      case XmlEventType::kEndElement:
        if (stack.empty()) return Status::Corruption("XML: unbalanced end");
        stack.pop_back();
        break;
      case XmlEventType::kText:
        if (!stack.empty()) stack.back()->text += ev.text;
        break;
      case XmlEventType::kEndDocument:
        if (!root) return Status::Corruption("XML: empty document");
        return root;
    }
  }
}

}  // namespace mass::xml
