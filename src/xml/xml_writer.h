// Streaming XML writer. MASS stores crawled corpora and saved visualization
// graphs as XML files (paper §III: "stores the bloggers' information ... in
// XML files"; §IV: "The visualization graph can be saved as an XML file").
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mass::xml {

/// Escapes the five XML special characters in text / attribute content.
std::string Escape(std::string_view s);

/// Emits well-formed XML to an ostream.
///
/// Usage:
///   XmlWriter w(os);
///   w.StartDocument();
///   w.StartElement("blogger");
///   w.Attribute("id", "42");
///   w.Text("...");
///   w.EndElement();
///
/// The writer indents two spaces per depth level and closes empty elements
/// as `<x/>`. Attribute() is only legal immediately after StartElement().
class XmlWriter {
 public:
  explicit XmlWriter(std::ostream& os) : os_(os) {}

  /// Writes the XML declaration.
  void StartDocument();

  void StartElement(std::string_view name);
  void Attribute(std::string_view name, std::string_view value);
  void Attribute(std::string_view name, int64_t value);
  void Attribute(std::string_view name, double value);
  void Text(std::string_view text);
  void EndElement();

  /// StartElement + Text + EndElement in one call.
  void SimpleElement(std::string_view name, std::string_view text);

  /// Number of elements currently open; 0 when the document is balanced.
  size_t depth() const { return stack_.size(); }

 private:
  void CloseStartTagIfOpen(bool for_text);
  void Indent();

  std::ostream& os_;
  std::vector<std::string> stack_;
  bool start_tag_open_ = false;
  bool last_was_text_ = false;
};

}  // namespace mass::xml
