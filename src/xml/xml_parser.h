// Pull parser and small DOM for the XML subset MASS writes: declaration,
// elements, attributes, character data, comments, and the five standard
// entities plus numeric character references. No DTDs, namespaces, or CDATA
// processing beyond pass-through.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mass::xml {

/// Event kinds produced by the pull parser.
enum class XmlEventType {
  kStartElement,
  kEndElement,
  kText,
  kEndDocument,
};

/// One parser event. `name` is set for element events; `text` for text
/// events; `attributes` for start-element events.
struct XmlEvent {
  XmlEventType type = XmlEventType::kEndDocument;
  std::string name;
  std::string text;
  std::vector<std::pair<std::string, std::string>> attributes;

  /// Returns the attribute value or an empty string.
  std::string_view Attr(std::string_view key) const;
  /// True when the attribute is present.
  bool HasAttr(std::string_view key) const;
};

/// Pull parser over an in-memory document.
///
/// Call Next() until it yields kEndDocument or an error Status. Whitespace-
/// only text between elements is skipped; mixed content whitespace is kept.
class XmlParser {
 public:
  explicit XmlParser(std::string_view input) : input_(input) {}

  /// Produces the next event, or a Corruption status on malformed input.
  Result<XmlEvent> Next();

  /// Byte offset of the parse cursor (for error reporting).
  size_t position() const { return pos_; }

 private:
  Status SkipProlog();
  Result<std::string> ParseName();
  Result<std::string> ParseAttrValue();
  Status DecodeEntities(std::string_view raw, std::string* out);
  Status Error(const std::string& what);

  std::string_view input_;
  size_t pos_ = 0;
  bool prolog_done_ = false;
  std::vector<std::string> open_;  // element stack for balance checking
  bool pending_empty_end_ = false;
  std::string pending_empty_name_;
};

/// DOM node: an element with attributes, children, and concatenated text.
struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;
  std::string text;  // concatenation of direct text content

  /// Attribute value or empty string.
  std::string_view Attr(std::string_view key) const;
  bool HasAttr(std::string_view key) const;

  /// First child element with the given name, or nullptr.
  const XmlNode* Child(std::string_view child_name) const;

  /// All child elements with the given name.
  std::vector<const XmlNode*> Children(std::string_view child_name) const;

  /// Text of the named child, or empty string.
  std::string_view ChildText(std::string_view child_name) const;
};

/// Parses a whole document into a DOM tree rooted at the single top element.
Result<std::unique_ptr<XmlNode>> ParseDocument(std::string_view input);

}  // namespace mass::xml
