// The per-shard half of the sharded fixed point, extracted from the
// engine so it can run behind a runtime::Transport — in a thread today,
// in a forked process (or, with a socket transport, another machine)
// without touching the math. A ShardWorker owns exactly one CSR slice
// and speaks the shard protocol:
//
//   kLoadSlice      -> kLoadAck (echoing the slice shape)
//   kIterateRound   -> kIterateResult (owned y, kernel time, residual)
//   kSnapshotRequest-> kSnapshotResult (rounds served + slice shape)
//   kShutdown       -> serve loop exits
//   anything else / undecodable -> kError (the coordinator retries)
//
// Bit-identity contract: the round kernel is the verbatim shard kernel
// from ShardedSpMV — each owned row summed serially in stored-column
// order over the [owned | halo] local x mirror — so y_owned is
// bit-identical to the in-process sharded solve and, by PR 7's
// invariant, to the unsharded solve.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/transport.h"
#include "shard/sharded_matrix.h"

namespace mass::shard {

class ShardWorker {
 public:
  /// Serves requests until a kShutdown message arrives or the channel
  /// closes (transport stop, coordinator death). Runs in the transport's
  /// worker context: a thread (inproc) or a forked child (pipe) — it
  /// touches nothing but its endpoint and its own slice.
  void Serve(size_t worker_index, runtime::Endpoint* endpoint);

 private:
  runtime::Message HandleLoadSlice(const runtime::Message& m);
  runtime::Message HandleIterateRound(const runtime::Message& m);
  runtime::Message HandleSnapshot(const runtime::Message& m);

  uint32_t shard_ = 0;
  bool loaded_ = false;
  ShardLocalMatrix slice_;
  uint64_t rounds_served_ = 0;
  std::vector<double> y_;
  std::vector<double> prev_y_;
  std::vector<uint8_t> scratch_;  ///< reply encode buffer, reused
};

}  // namespace mass::shard
