// Shard assignment for the partitioned influence solve: which of the K
// shards owns each blogger's row of the compiled CSR system. The key is
// pluggable — the default is a multiplicative hash (stateless, balanced,
// stable across runs), and a community-aware key from a graph clustering
// can be dropped in without touching the solver (see ShardingSpec::key).
//
// A plan is pure bookkeeping: it never looks at the matrix. Partitioning
// the compiled matrix against a plan and running the sharded rounds live
// in sharded_matrix.h / the engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "model/entities.h"

namespace mass::shard {

/// Maps (blogger, num_shards) -> owning shard in [0, num_shards). Must be
/// a pure function of its arguments: the plan is rebuilt per solve and the
/// parity suites assume identical assignments across runs.
using ShardKeyFn = std::function<uint32_t(BloggerId, size_t)>;

/// The built-in key: a Fibonacci multiplicative hash of the blogger id.
/// Spreads consecutive ids (the synth generator allocates them densely)
/// evenly across shards instead of striping them.
uint32_t HashShardKey(BloggerId blogger, size_t num_shards);

/// How to partition: shard count plus the (optional) custom key.
struct ShardingSpec {
  size_t num_shards = 1;
  /// Null uses HashShardKey. A community-aware key plugs in here.
  ShardKeyFn key;
};

/// The materialized assignment: owner per blogger plus each shard's owned
/// rows in ascending blogger-id order (the order the partitioned matrix
/// keeps its rows in).
struct ShardPlan {
  size_t num_shards = 1;
  std::vector<uint32_t> owner;                 ///< [blogger] -> shard
  std::vector<std::vector<BloggerId>> owned;   ///< [shard], ids ascending
};

/// Assigns every blogger in [0, num_bloggers) to a shard. num_shards is
/// clamped to at least 1; a key returning an out-of-range shard is folded
/// back in range (mod), so a buggy custom key degrades to imbalance, not
/// to a lost row.
ShardPlan BuildShardPlan(size_t num_bloggers, const ShardingSpec& spec);

}  // namespace mass::shard
