// The coordinator half of the shard runtime: owns a runtime::Transport
// to K ShardWorkers, ships each its CSR slice, drives the fixed point
// round by round — shard-local SpMVs behind the message boundary, the
// global blend/normalize/residual here, exactly the arithmetic of the
// PR-7 in-process solve — and reports per-shard summaries for the
// composite snapshot path.
//
// Failure contract (what the engine's degradation guarantee builds on):
// every exchange has a per-message deadline and a bounded retry budget
// (common/backoff pacing, a fresh sequence number per attempt so stale
// replies are discarded, and IterateRound requests are pure functions of
// x — resending one is idempotent). When the budget runs out the solve
// surfaces a typed Status — DeadlineExceeded for a silent worker,
// Unavailable for a dead one, Corruption for undecodable traffic — and
// since the engine publishes snapshots only as the last step of a
// successful write, the previous snapshot keeps serving untouched. The
// next sharded solve restarts dead workers and reloads slices.
//
// Observability: shard.transport.{bytes_total,round_trip_us,
// timeouts_total} in the §8 registry; the engine layers the existing
// shard.boundary.exchange_us / shard.spmv_us / per-shard spans on top.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/backoff.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "runtime/transport.h"
#include "shard/sharded_matrix.h"
#include "storage/shard_codec.h"

namespace mass {
class ThreadPool;
}  // namespace mass

namespace mass::shard {

/// What the fault hook tells the coordinator to do to one outbound
/// message (EngineFaultSite::kTransport; the engine owns the draws so
/// this layer stays free of core dependencies).
struct TransportFaultDecision {
  bool drop = false;         ///< never send; the recv deadline must expire
  bool truncate = false;     ///< send a mangled payload; the codec rejects
  bool kill_worker = false;  ///< shut the worker down instead (death test)
};

/// Pure function of the coordinator's message op counter; null = no
/// faults. Delay-style faults sleep inside the hook itself.
using TransportFaultHook =
    std::function<TransportFaultDecision(uint64_t op_index)>;

struct ShardCoordinatorOptions {
  runtime::TransportKind transport = runtime::TransportKind::kInProc;
  /// Per-message deadline (microseconds) for every send/recv; 0 waits
  /// forever. With a fault hook installed, an unset deadline falls back
  /// to 1s so injected drops cannot hang a solve.
  int64_t message_deadline_micros = 0;
  /// Retry budget + pacing for one exchange (max_retries resends after
  /// the first attempt; delays from BackoffSchedule, deterministic per
  /// (shard, exchange)).
  BackoffPolicy retry;
  /// Registry for shard.transport.* metrics; null disables them.
  obs::MetricsRegistry* metrics = nullptr;
  TransportFaultHook fault_hook;
};

/// Per-round accounting from IterateRound.
struct ShardRoundStats {
  /// Wall time of the fan-out round minus the slowest worker's reported
  /// kernel time: the gather/serialize/transport share of the round (the
  /// multi-process successor of the PR-7 halo-gather timing).
  uint64_t exchange_us = 0;
  uint64_t round_trip_us = 0;       ///< whole fan-out wall time
  uint64_t bytes = 0;               ///< payload bytes sent + received
  std::vector<uint64_t> spmv_us;    ///< per shard, worker-reported
};

/// Inputs of one sharded fixed-point solve — the engine's Eq. 1 blend
/// parameters plus the vectors the blend reads. Pointers must outlive
/// the call.
struct FixedPointParams {
  double alpha = 0.5;
  double damping = 0.0;
  double tolerance = 1e-9;
  int max_iterations = 100;
  bool use_citation = true;
  bool warm = false;
  const std::vector<double>* gl = nullptr;       ///< GL(b), mean-normalized
  const std::vector<double>* quality = nullptr;  ///< global q, cold start
  ThreadPool* pool = nullptr;  ///< residual reduction (may be null)
  /// Invoked once per round when set (the engine's kSpmv slowdown fault).
  std::function<void()> round_stall;
};

struct FixedPointRoundTrace {
  int iteration = 0;
  double residual = 0.0;
};

struct FixedPointResult {
  int iterations = 0;
  double final_residual = 0.0;
  bool converged = false;
  std::vector<FixedPointRoundTrace> residuals;
  /// The x of the final round — ReconstructPostInfluence's input.
  std::vector<double> last_x;
  std::vector<uint64_t> spmv_us;            ///< per shard, summed
  std::vector<uint64_t> round_exchange_us;  ///< per round
  uint64_t exchange_us_total = 0;
  uint64_t bytes_total = 0;
};

class ShardCoordinator {
 public:
  explicit ShardCoordinator(ShardCoordinatorOptions options);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Starts (or restarts, after a worker death or shard-count change) the
  /// transport and ships every shard its slice, awaiting acks. Must be
  /// called before IterateRound/SolveFixedPoint, and again whenever the
  /// partition is rebuilt.
  Status LoadSlices(const ShardedSolverMatrix& matrix);

  /// One fixed-point round across all shards: y = q + M·x assembled from
  /// the workers' owned slices. `x` must have num_bloggers entries.
  Status IterateRound(const std::vector<double>& x, std::vector<double>* y,
                      ShardRoundStats* stats);

  /// The whole sharded fixed point (cold or warm), bit-identical to the
  /// engine's in-process IterateSharded: per-round worker SpMVs via
  /// IterateRound, global blend/normalize/damping/residual here.
  /// `influence` and `ap` are the engine's live vectors (in/out, same
  /// cold/warm semantics as before).
  Status SolveFixedPoint(const FixedPointParams& params,
                         std::vector<double>* influence,
                         std::vector<double>* ap, FixedPointResult* out);

  /// Asks every worker for its state (kSnapshotRequest).
  Result<std::vector<ShardSummaryPayload>> Snapshot();

  /// Graceful teardown: kShutdown to every live worker, then transport
  /// stop. Idempotent; the destructor calls it.
  void Shutdown();

  size_t num_shards() const { return owned_.size(); }
  bool loaded() const { return loaded_; }
  std::string_view transport_name() const {
    return runtime::TransportKindName(options_.transport);
  }
  /// The live transport (null before the first LoadSlices) — test access.
  runtime::Transport* transport() { return transport_.get(); }

 private:
  Status EnsureStarted(size_t num_workers);
  /// Applies the fault hook, counts bytes, and sends over `endpoint(s)`.
  Status SendWithFaults(size_t s, runtime::MessageType type,
                        std::vector<uint8_t> payload);
  /// Receives until a reply of `want` with sequence `seq` arrives (stale
  /// replies are discarded, kError becomes its carried Status).
  Status AwaitReply(size_t s, runtime::MessageType want, uint64_t seq,
                    runtime::Message* reply);
  /// Send-all / await-all with per-shard end-to-end retries.
  Status FanOut(
      runtime::MessageType req, runtime::MessageType want,
      const std::function<void(size_t, uint64_t, std::vector<uint8_t>*)>&
          encode,
      const std::function<Status(size_t, const runtime::Message&)>& consume);
  int64_t EffectiveDeadlineMicros() const;

  ShardCoordinatorOptions options_;
  std::unique_ptr<runtime::Transport> transport_;
  bool loaded_ = false;
  size_t num_bloggers_ = 0;
  std::vector<std::vector<BloggerId>> owned_;
  std::vector<std::vector<BloggerId>> halo_;
  uint64_t seq_ = 0;       ///< exchange attempt sequence (stale filter)
  uint64_t send_ops_ = 0;  ///< fault-hook op index
  std::vector<uint8_t> encode_buf_;
  RoundRequestPayload request_scratch_;

  obs::Counter bytes_total_;
  obs::Histogram round_trip_us_;
  obs::Counter timeouts_total_;
};

}  // namespace mass::shard
