#include "shard/sharded_matrix.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace mass::shard {

size_t ShardedSolverMatrix::nnz() const {
  size_t n = 0;
  for (const ShardLocalMatrix& s : shards) n += s.nnz();
  return n;
}

size_t ShardedSolverMatrix::halo_entries() const {
  size_t n = 0;
  for (const ShardLocalMatrix& s : shards) n += s.halo.size();
  return n;
}

ShardedSolverMatrix PartitionSolverMatrix(const SolverMatrix& matrix,
                                          const ShardPlan& plan,
                                          ThreadPool* pool) {
  ShardedSolverMatrix out;
  out.num_bloggers = matrix.num_bloggers;
  out.shards.resize(plan.num_shards);

  // Shards build independently: each reads only its own rows of the global
  // CSR and writes only its own slice.
  ParallelFor(pool, plan.num_shards, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      ShardLocalMatrix& local = out.shards[s];
      local.owned = plan.owned[s];
      const size_t rows = local.owned.size();

      size_t nnz = 0;
      for (BloggerId b : local.owned) {
        nnz += matrix.row_offsets[b + 1] - matrix.row_offsets[b];
      }
      local.row_offsets.resize(rows + 1);
      local.cols.resize(nnz);
      local.values.resize(nnz);
      local.quality.resize(rows);

      // Halo = every column this shard reads that it does not own.
      local.halo.clear();
      for (BloggerId b : local.owned) {
        for (size_t k = matrix.row_offsets[b]; k < matrix.row_offsets[b + 1];
             ++k) {
          const BloggerId c = matrix.cols[k];
          if (plan.owner[c] != s) local.halo.push_back(c);
        }
      }
      std::sort(local.halo.begin(), local.halo.end());
      local.halo.erase(std::unique(local.halo.begin(), local.halo.end()),
                       local.halo.end());

      // Global id -> local x index: owned rows first, halo after, both
      // ascending — so remapped columns keep the global ascending order
      // within each partition of a row, and the row's overall column order
      // (hence its serial summation order) is unchanged from the global
      // matrix: the remap is monotone on owned ids and on halo ids
      // separately, and the SpMV reads columns by position, not value.
      std::vector<uint32_t> to_local(matrix.num_bloggers, 0);
      for (size_t i = 0; i < rows; ++i) to_local[local.owned[i]] = i;
      for (size_t i = 0; i < local.halo.size(); ++i) {
        to_local[local.halo[i]] = static_cast<uint32_t>(rows + i);
      }

      size_t k_out = 0;
      for (size_t r = 0; r < rows; ++r) {
        const BloggerId b = local.owned[r];
        local.row_offsets[r] = k_out;
        local.quality[r] = matrix.quality[b];
        for (size_t k = matrix.row_offsets[b]; k < matrix.row_offsets[b + 1];
             ++k, ++k_out) {
          local.cols[k_out] = to_local[matrix.cols[k]];
          local.values[k_out] = matrix.values[k];
        }
      }
      local.row_offsets[rows] = k_out;
    }
  });
  return out;
}

void ShardedSpMV(const ShardedSolverMatrix& m, const std::vector<double>& x,
                 std::vector<double>* y,
                 std::vector<std::vector<double>>* x_local, ThreadPool* pool,
                 std::vector<ShardRoundTiming>* timings) {
  y->resize(m.num_bloggers);
  x_local->resize(m.shards.size());
  if (timings) timings->assign(m.shards.size(), {});
  double* const out = y->data();
  const double* const in = x.data();

  ParallelFor(pool, m.shards.size(), [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      const ShardLocalMatrix& local = m.shards[s];
      std::vector<double>& xs = (*x_local)[s];
      xs.resize(local.local_x_size());
      const size_t rows = local.owned.size();

      // Owned slice of the mirror: the shard's own territory, part of the
      // SpMV cost, not of the exchange.
      Stopwatch spmv_sw;
      for (size_t i = 0; i < rows; ++i) xs[i] = in[local.owned[i]];
      const double spmv_gather_s = spmv_sw.ElapsedSeconds();

      // Boundary exchange: pull the halo values the other shards produced
      // this round. In a multi-process deployment this is the message.
      Stopwatch exchange_sw;
      for (size_t i = 0; i < local.halo.size(); ++i) {
        xs[rows + i] = in[local.halo[i]];
      }
      const double exchange_s = exchange_sw.ElapsedSeconds();

      // Shard-local SpMV, each row summed serially in stored-column order
      // (identical per-row arithmetic to the unsharded SolverSpMV), rows
      // scattered to their disjoint global slots.
      Stopwatch rows_sw;
      const double* const xv = xs.data();
      for (size_t r = 0; r < rows; ++r) {
        double acc = local.quality[r];
        for (size_t k = local.row_offsets[r]; k < local.row_offsets[r + 1];
             ++k) {
          acc += local.values[k] * xv[local.cols[k]];
        }
        out[local.owned[r]] = acc;
      }
      if (timings) {
        (*timings)[s].exchange_us =
            static_cast<uint64_t>(exchange_s * 1e6);
        (*timings)[s].spmv_us = static_cast<uint64_t>(
            (spmv_gather_s + rows_sw.ElapsedSeconds()) * 1e6);
      }
    }
  });
}

}  // namespace mass::shard
