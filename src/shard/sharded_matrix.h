// The compiled influence system (core/solver_matrix.h) partitioned by a
// ShardPlan: each shard holds its own CSR SolverMatrix slice — the rows it
// owns, columns remapped into a local [owned | halo] index space — so one
// fixed-point round becomes K independent shard-local SpMVs plus a
// boundary-influence exchange that refills each shard's local x mirror
// from the global iterate.
//
// Numerical contract (what the shard parity suite asserts): the sharded
// round is BIT-IDENTICAL to the unsharded SolverSpMV for every shard
// count and thread count. Partitioning copies each global row verbatim —
// same values, same ascending-column order — and the shard kernel sums
// each row serially exactly like the unsharded kernel, so per-row dot
// products round identically; rows scatter to disjoint global slots, so
// assembly order cannot matter. Convergence is therefore judged on the
// same global residual the unsharded solve produces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/solver_matrix.h"
#include "shard/shard_plan.h"

namespace mass {
class ThreadPool;
}  // namespace mass

namespace mass::shard {

/// One shard's slice of the compiled system. Rows are the shard's owned
/// bloggers in ascending global id; `cols` hold LOCAL x indices: entry i
/// of the local x mirror is owned[i] for i < owned.size(), then
/// halo[i - owned.size()] — the non-owned bloggers this shard reads,
/// ascending. The exchange step (GatherLocalX) fills that mirror.
struct ShardLocalMatrix {
  std::vector<BloggerId> owned;    ///< global row ids, ascending
  std::vector<BloggerId> halo;     ///< global ids read but not owned
  std::vector<size_t> row_offsets; ///< [owned.size() + 1]
  std::vector<uint32_t> cols;      ///< [nnz] local x indices
  std::vector<double> values;      ///< [nnz], verbatim from the global CSR
  std::vector<double> quality;     ///< [owned.size()] q(b) slice

  size_t nnz() const { return cols.size(); }
  size_t local_x_size() const { return owned.size() + halo.size(); }
};

/// The full partitioned system plus per-round exchange accounting.
struct ShardedSolverMatrix {
  size_t num_bloggers = 0;
  std::vector<ShardLocalMatrix> shards;

  size_t num_shards() const { return shards.size(); }
  size_t nnz() const;
  /// Total halo entries across shards — the volume one boundary exchange
  /// moves (the shard.boundary.halo_entries gauge).
  size_t halo_entries() const;
};

/// Splits a compiled global matrix by the plan. Each shard's rows are the
/// plan's owned list; values and in-row column order are copied verbatim
/// (see the bit-identity contract above). The post-grouped mirror is NOT
/// partitioned — the final per-post reconstruction reads the global
/// mirror, which is already embarrassingly parallel over posts. `pool`
/// parallelizes the per-shard builds; the result is identical either way.
ShardedSolverMatrix PartitionSolverMatrix(const SolverMatrix& matrix,
                                          const ShardPlan& plan,
                                          ThreadPool* pool);

/// Per-shard, per-round timing filled by ShardedSpMV.
struct ShardRoundTiming {
  uint64_t exchange_us = 0;  ///< halo gather (the boundary exchange)
  uint64_t spmv_us = 0;      ///< owned gather + shard-local SpMV
};

/// One sharded fixed-point round: for every shard, gather its local x
/// mirror from the global iterate `x` (the halo portion is the boundary
/// exchange, timed separately), run the shard-local SpMV, and scatter
/// y[row] = q[row] + M_s·x_local into the disjoint global slots. `y` is
/// resized to num_bloggers; `x_local` is the per-shard mirror workspace
/// (resized on first use, reused across rounds); `timings` (if non-null)
/// is resized to num_shards and overwritten each call. Bit-identical to
/// SolverSpMV on the unpartitioned matrix for any shard/thread count.
void ShardedSpMV(const ShardedSolverMatrix& m, const std::vector<double>& x,
                 std::vector<double>* y,
                 std::vector<std::vector<double>>* x_local, ThreadPool* pool,
                 std::vector<ShardRoundTiming>* timings);

}  // namespace mass::shard
