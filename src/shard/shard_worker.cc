#include "shard/shard_worker.h"

#include <cmath>
#include <utility>

#include "common/stopwatch.h"
#include "storage/shard_codec.h"

namespace mass::shard {

namespace {

runtime::Message ErrorReply(const Status& st, std::vector<uint8_t>* scratch) {
  ErrorPayload e;
  e.code = static_cast<uint32_t>(st.code());
  e.message = std::string(st.message());
  EncodeError(e, scratch);
  runtime::Message m;
  m.type = runtime::MessageType::kError;
  m.payload = std::move(*scratch);
  return m;
}

}  // namespace

void ShardWorker::Serve(size_t worker_index, runtime::Endpoint* endpoint) {
  shard_ = static_cast<uint32_t>(worker_index);
  for (;;) {
    // No deadline on the worker side: it waits for work until the
    // coordinator closes the channel (which is also how worker teardown
    // and coordinator death are delivered).
    Result<runtime::Message> r = endpoint->Recv(/*deadline_micros=*/0);
    if (!r.ok()) return;
    runtime::Message& m = *r;

    runtime::Message reply;
    switch (m.type) {
      case runtime::MessageType::kShutdown:
        return;
      case runtime::MessageType::kLoadSlice:
        reply = HandleLoadSlice(m);
        break;
      case runtime::MessageType::kIterateRound:
        reply = HandleIterateRound(m);
        break;
      case runtime::MessageType::kSnapshotRequest:
        reply = HandleSnapshot(m);
        break;
      default:
        reply = ErrorReply(
            Status::InvalidArgument("shard worker: unexpected message type"),
            &scratch_);
        break;
    }
    // A send only fails when the channel is gone; nothing to do but exit.
    if (!endpoint->Send(std::move(reply), /*deadline_micros=*/0).ok()) return;
  }
}

runtime::Message ShardWorker::HandleLoadSlice(const runtime::Message& m) {
  SlicePayload p;
  const Status st = DecodeSlice(m.payload.data(), m.payload.size(), &p);
  if (!st.ok()) return ErrorReply(st, &scratch_);

  slice_ = std::move(p.matrix);
  loaded_ = true;
  prev_y_.clear();

  ShardSummaryPayload ack;
  ack.shard = p.shard;
  ack.seq = p.seq;
  ack.rounds_served = rounds_served_;
  ack.owned = slice_.owned.size();
  ack.halo = slice_.halo.size();
  ack.nnz = slice_.nnz();
  EncodeShardSummary(ack, &scratch_);
  runtime::Message reply;
  reply.type = runtime::MessageType::kLoadAck;
  reply.payload = std::move(scratch_);
  return reply;
}

runtime::Message ShardWorker::HandleIterateRound(const runtime::Message& m) {
  RoundRequestPayload p;
  Status st = DecodeRoundRequest(m.payload.data(), m.payload.size(), &p);
  if (!st.ok()) return ErrorReply(st, &scratch_);
  if (!loaded_) {
    return ErrorReply(
        Status::FailedPrecondition("shard worker: no slice loaded"),
        &scratch_);
  }
  if (p.x_local.size() != slice_.local_x_size()) {
    return ErrorReply(
        Status::Corruption("shard worker: x mirror size mismatch"), &scratch_);
  }

  // The shard kernel, verbatim from ShardedSpMV: each owned row summed
  // serially in stored-column order (the bit-identity contract).
  Stopwatch sw;
  const size_t rows = slice_.owned.size();
  y_.resize(rows);
  const double* const xv = p.x_local.data();
  for (size_t r = 0; r < rows; ++r) {
    double acc = slice_.quality[r];
    for (size_t k = slice_.row_offsets[r]; k < slice_.row_offsets[r + 1];
         ++k) {
      acc += slice_.values[k] * xv[slice_.cols[k]];
    }
    y_[r] = acc;
  }
  const uint64_t spmv_us = static_cast<uint64_t>(sw.ElapsedSeconds() * 1e6);

  // Shard-local progress diagnostic; the coordinator judges convergence
  // on the global blended residual, exactly as the in-process solve did.
  double residual = 0.0;
  if (prev_y_.size() == rows) {
    for (size_t r = 0; r < rows; ++r) {
      residual = std::max(residual, std::abs(y_[r] - prev_y_[r]));
    }
  }
  prev_y_ = y_;
  ++rounds_served_;

  RoundResultPayload out;
  out.shard = p.shard;
  out.seq = p.seq;
  out.spmv_us = spmv_us;
  out.local_residual = residual;
  out.y_owned = std::move(y_);
  EncodeRoundResult(out, &scratch_);
  y_ = std::move(out.y_owned);  // reclaim the buffer for the next round
  runtime::Message reply;
  reply.type = runtime::MessageType::kIterateResult;
  reply.payload = std::move(scratch_);
  return reply;
}

runtime::Message ShardWorker::HandleSnapshot(const runtime::Message& m) {
  ControlPayload p;
  const Status st = DecodeControl(m.payload.data(), m.payload.size(), &p);
  if (!st.ok()) return ErrorReply(st, &scratch_);

  ShardSummaryPayload s;
  s.shard = shard_;
  s.seq = p.seq;
  s.rounds_served = rounds_served_;
  s.owned = slice_.owned.size();
  s.halo = slice_.halo.size();
  s.nnz = slice_.nnz();
  EncodeShardSummary(s, &scratch_);
  runtime::Message reply;
  reply.type = runtime::MessageType::kSnapshotResult;
  reply.payload = std::move(scratch_);
  return reply;
}

}  // namespace mass::shard
