#include "shard/shard_plan.h"

namespace mass::shard {

uint32_t HashShardKey(BloggerId blogger, size_t num_shards) {
  if (num_shards <= 1) return 0;
  // Fibonacci hashing: multiply by 2^64 / phi and keep the high bits.
  const uint64_t h = static_cast<uint64_t>(blogger) * 11400714819323198485ull;
  return static_cast<uint32_t>((h >> 32) % num_shards);
}

ShardPlan BuildShardPlan(size_t num_bloggers, const ShardingSpec& spec) {
  ShardPlan plan;
  plan.num_shards = spec.num_shards > 0 ? spec.num_shards : 1;
  plan.owner.resize(num_bloggers);
  plan.owned.assign(plan.num_shards, {});
  for (size_t b = 0; b < num_bloggers; ++b) {
    const BloggerId id = static_cast<BloggerId>(b);
    uint32_t s = spec.key ? spec.key(id, plan.num_shards)
                          : HashShardKey(id, plan.num_shards);
    if (s >= plan.num_shards) s %= static_cast<uint32_t>(plan.num_shards);
    plan.owner[b] = s;
    plan.owned[s].push_back(id);  // ids arrive ascending, so rows stay sorted
  }
  return plan;
}

}  // namespace mass::shard
