#include "shard/shard_coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/solver_matrix.h"
#include "shard/shard_worker.h"

namespace mass::shard {

namespace {

// Deadline backstop when a fault hook can drop messages but the caller
// configured no deadline: without one, an injected drop would hang the
// solve forever instead of exercising the retry path.
constexpr int64_t kFaultFallbackDeadlineMicros = 1'000'000;

void RunShardWorker(size_t worker_index, runtime::Endpoint* endpoint) {
  // Captureless by design: under PipeTransport this runs in a forked
  // child, so it must depend on nothing but the endpoint.
  ShardWorker worker;
  worker.Serve(worker_index, endpoint);
}

}  // namespace

ShardCoordinator::ShardCoordinator(ShardCoordinatorOptions options)
    : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    bytes_total_ = options_.metrics->GetCounter("shard.transport.bytes_total");
    round_trip_us_ =
        options_.metrics->GetHistogram("shard.transport.round_trip_us");
    timeouts_total_ =
        options_.metrics->GetCounter("shard.transport.timeouts_total");
  }
}

ShardCoordinator::~ShardCoordinator() { Shutdown(); }

int64_t ShardCoordinator::EffectiveDeadlineMicros() const {
  if (options_.message_deadline_micros > 0) {
    return options_.message_deadline_micros;
  }
  return options_.fault_hook ? kFaultFallbackDeadlineMicros : 0;
}

Status ShardCoordinator::EnsureStarted(size_t num_workers) {
  if (transport_ != nullptr) {
    bool healthy = transport_->num_workers() == num_workers;
    for (size_t s = 0; healthy && s < num_workers; ++s) {
      healthy = transport_->WorkerAlive(s);
    }
    if (healthy) return Status::OK();
    // A dead worker (or a resize) restarts the whole fleet: slices are
    // reloaded right after, so there is no state worth salvaging.
    transport_->Stop();
    transport_.reset();
  }
  transport_ = runtime::MakeTransport(options_.transport);
  return transport_->Start(num_workers, RunShardWorker);
}

Status ShardCoordinator::SendWithFaults(size_t s, runtime::MessageType type,
                                        std::vector<uint8_t> payload) {
  runtime::Endpoint* ep = transport_->endpoint(s);
  if (ep == nullptr) return Status::Unavailable("shard endpoint missing");

  TransportFaultDecision fault;
  if (options_.fault_hook) fault = options_.fault_hook(send_ops_++);

  if (fault.kill_worker) {
    // Simulated worker death, deterministic and transport-agnostic: the
    // worker obeys kShutdown, its channel closes, and the coordinator
    // sees Unavailable exactly as it would for a crashed process.
    runtime::Message shutdown;
    shutdown.type = runtime::MessageType::kShutdown;
    (void)ep->Send(std::move(shutdown), EffectiveDeadlineMicros());
    return Status::OK();  // the failure surfaces on the recv side
  }
  if (fault.drop) return Status::OK();  // silently lost in "the network"
  if (fault.truncate && !payload.empty()) {
    payload.resize(payload.size() / 2);
  }

  runtime::Message m;
  m.type = type;
  const uint64_t bytes = payload.size();
  m.payload = std::move(payload);
  const Status st = ep->Send(std::move(m), EffectiveDeadlineMicros());
  if (st.ok()) {
    bytes_total_.Increment(bytes);
  } else if (st.code() == StatusCode::kDeadlineExceeded) {
    timeouts_total_.Increment();
  }
  return st;
}

Status ShardCoordinator::AwaitReply(size_t s, runtime::MessageType want,
                                    uint64_t seq, runtime::Message* reply) {
  runtime::Endpoint* ep = transport_->endpoint(s);
  if (ep == nullptr) return Status::Unavailable("shard endpoint missing");
  for (;;) {
    Result<runtime::Message> r = ep->Recv(EffectiveDeadlineMicros());
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kDeadlineExceeded) {
        timeouts_total_.Increment();
      }
      return r.status();
    }
    runtime::Message m = std::move(*r);
    bytes_total_.Increment(m.payload.size());
    if (m.type == runtime::MessageType::kError) {
      // The worker rejected a request. It cannot tell us which attempt
      // (an undecodable payload has no readable seq), so treat it as the
      // current one failing; the retry loop re-sends with a fresh seq.
      ErrorPayload e;
      if (DecodeError(m.payload.data(), m.payload.size(), &e).ok()) {
        const StatusCode code =
            e.code <= static_cast<uint32_t>(StatusCode::kUnavailable)
                ? static_cast<StatusCode>(e.code)
                : StatusCode::kInternal;
        return Status(code,
                      StrFormat("shard %zu: %s", s, e.message.c_str()));
      }
      return Status::Corruption(
          StrFormat("shard %zu sent an undecodable error", s));
    }
    uint32_t reply_shard = 0;
    uint64_t reply_seq = 0;
    if (!PeekShardSeq(m.payload.data(), m.payload.size(), &reply_shard,
                      &reply_seq)) {
      return Status::Corruption(
          StrFormat("shard %zu sent an unparseable reply", s));
    }
    if (reply_seq != seq) continue;  // stale: a late answer we gave up on
    if (m.type != want) {
      return Status::Corruption(StrFormat(
          "shard %zu replied type %u to a type-%u exchange", s,
          static_cast<unsigned>(m.type), static_cast<unsigned>(want)));
    }
    *reply = std::move(m);
    return Status::OK();
  }
}

Status ShardCoordinator::FanOut(
    runtime::MessageType req, runtime::MessageType want,
    const std::function<void(size_t, uint64_t, std::vector<uint8_t>*)>&
        encode,
    const std::function<Status(size_t, const runtime::Message&)>& consume) {
  const size_t num = num_shards();
  std::vector<uint64_t> seqs(num, 0);
  std::vector<Status> pending(num);

  // Phase 1: first attempt to every shard, no waiting — the workers
  // decode and compute concurrently.
  for (size_t s = 0; s < num; ++s) {
    seqs[s] = ++seq_;
    encode(s, seqs[s], &encode_buf_);
    pending[s] = SendWithFaults(s, req, std::move(encode_buf_));
  }

  // Phase 2: collect, retrying a failed exchange end-to-end (fresh seq,
  // backoff pacing). IterateRound requests are pure in x, so a resend
  // after a timeout is idempotent; stale replies are filtered by seq.
  for (size_t s = 0; s < num; ++s) {
    Status st = pending[s];
    runtime::Message reply;
    if (st.ok()) st = AwaitReply(s, want, seqs[s], &reply);
    if (st.ok()) st = consume(s, reply);
    if (st.ok()) continue;

    BackoffSchedule schedule(options_.retry,
                             seq_ * 0x9E3779B97F4A7C15ull + s);
    while (!st.ok()) {
      if (st.code() == StatusCode::kUnavailable ||
          st.code() == StatusCode::kIOError) {
        // Dead channel: resending cannot help inside this solve. The
        // next LoadSlices restarts the fleet.
        return Status::Unavailable(StrFormat(
            "shard %zu worker is gone (%s)", s, st.message().c_str()));
      }
      const int64_t delay = schedule.NextDelayMicros();
      if (delay < 0) return st;  // budget exhausted: typed failure out
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
      const uint64_t seq = ++seq_;
      encode(s, seq, &encode_buf_);
      st = SendWithFaults(s, req, std::move(encode_buf_));
      if (st.ok()) st = AwaitReply(s, want, seq, &reply);
      if (st.ok()) st = consume(s, reply);
    }
  }
  return Status::OK();
}

Status ShardCoordinator::LoadSlices(const ShardedSolverMatrix& matrix) {
  const size_t num = matrix.num_shards();
  if (num == 0) return Status::InvalidArgument("no shards to load");
  loaded_ = false;
  MASS_RETURN_IF_ERROR(EnsureStarted(num));

  num_bloggers_ = matrix.num_bloggers;
  owned_.assign(num, {});
  halo_.assign(num, {});
  for (size_t s = 0; s < num; ++s) {
    owned_[s] = matrix.shards[s].owned;
    halo_[s] = matrix.shards[s].halo;
  }

  Status st = FanOut(
      runtime::MessageType::kLoadSlice, runtime::MessageType::kLoadAck,
      [&matrix](size_t s, uint64_t seq, std::vector<uint8_t>* out) {
        EncodeSlice(static_cast<uint32_t>(s), seq, matrix.num_bloggers,
                    matrix.shards[s], out);
      },
      [this, &matrix](size_t s, const runtime::Message& reply) {
        ShardSummaryPayload ack;
        MASS_RETURN_IF_ERROR(
            DecodeShardSummary(reply.payload.data(), reply.payload.size(),
                               &ack));
        const ShardLocalMatrix& slice = matrix.shards[s];
        if (ack.shard != s || ack.owned != slice.owned.size() ||
            ack.halo != slice.halo.size() || ack.nnz != slice.nnz()) {
          return Status::Corruption(
              StrFormat("shard %zu acked a mismatched slice", s));
        }
        return Status::OK();
      });
  if (!st.ok()) return st;
  loaded_ = true;
  return Status::OK();
}

Status ShardCoordinator::IterateRound(const std::vector<double>& x,
                                      std::vector<double>* y,
                                      ShardRoundStats* stats) {
  if (!loaded_) {
    return Status::FailedPrecondition("shard runtime has no loaded slices");
  }
  if (x.size() != num_bloggers_) {
    return Status::InvalidArgument("iterate round: x size mismatch");
  }
  const size_t num = num_shards();
  y->resize(num_bloggers_);
  if (stats != nullptr) {
    stats->spmv_us.assign(num, 0);
    stats->bytes = 0;
  }

  Stopwatch round_sw;
  const uint64_t bytes_before = bytes_total_.Value();
  uint64_t max_spmv_us = 0;

  Status st = FanOut(
      runtime::MessageType::kIterateRound,
      runtime::MessageType::kIterateResult,
      [this, &x](size_t s, uint64_t seq, std::vector<uint8_t>* out) {
        RoundRequestPayload& p = request_scratch_;
        p.shard = static_cast<uint32_t>(s);
        p.seq = seq;
        // GatherLocalX, verbatim: the owned mirror then the halo mirror —
        // the halo half is the boundary exchange, now an actual message.
        const std::vector<BloggerId>& owned = owned_[s];
        const std::vector<BloggerId>& halo = halo_[s];
        p.x_local.resize(owned.size() + halo.size());
        double* xs = p.x_local.data();
        const double* in = x.data();
        for (size_t i = 0; i < owned.size(); ++i) xs[i] = in[owned[i]];
        for (size_t i = 0; i < halo.size(); ++i) {
          xs[owned.size() + i] = in[halo[i]];
        }
        EncodeRoundRequest(p, out);
      },
      [this, y, stats, &max_spmv_us](size_t s,
                                     const runtime::Message& reply) {
        RoundResultPayload r;
        MASS_RETURN_IF_ERROR(
            DecodeRoundResult(reply.payload.data(), reply.payload.size(),
                              &r));
        const std::vector<BloggerId>& owned = owned_[s];
        if (r.shard != s || r.y_owned.size() != owned.size()) {
          return Status::Corruption(
              StrFormat("shard %zu returned a mismatched y slice", s));
        }
        double* out = y->data();
        for (size_t i = 0; i < owned.size(); ++i) {
          out[owned[i]] = r.y_owned[i];
        }
        if (stats != nullptr) stats->spmv_us[s] = r.spmv_us;
        max_spmv_us = std::max(max_spmv_us, r.spmv_us);
        return Status::OK();
      });
  if (!st.ok()) return st;

  const uint64_t round_us =
      static_cast<uint64_t>(round_sw.ElapsedSeconds() * 1e6);
  round_trip_us_.Record(round_us);
  if (stats != nullptr) {
    stats->round_trip_us = round_us;
    stats->exchange_us = round_us > max_spmv_us ? round_us - max_spmv_us : 0;
    stats->bytes = bytes_total_.Value() - bytes_before;
  }
  return Status::OK();
}

Status ShardCoordinator::SolveFixedPoint(const FixedPointParams& params,
                                         std::vector<double>* influence,
                                         std::vector<double>* ap,
                                         FixedPointResult* out) {
  if (params.gl == nullptr || params.quality == nullptr) {
    return Status::InvalidArgument("fixed point needs gl and quality");
  }
  const size_t nb = num_bloggers_;
  const double alpha = params.alpha;
  const std::vector<double>& gl = *params.gl;
  out->spmv_us.assign(num_shards(), 0);

  // Cold/warm starts are byte-for-byte the engine's IterateCompiled /
  // IterateSharded setup: warm keeps the previous influence (new
  // bloggers join at the normalized mean, 1.0); cold seeds ap with the
  // global quality vector and blends from zero influence.
  if (params.warm) {
    influence->resize(nb, 1.0);
    ap->resize(nb, 0.0);
  } else {
    *ap = *params.quality;
    influence->assign(nb, 0.0);
    for (size_t b = 0; b < nb; ++b) {
      (*influence)[b] = alpha * (*ap)[b] + (1.0 - alpha) * gl[b];
    }
    MeanNormalize(influence);
  }

  std::vector<double> ones;
  if (!params.use_citation) ones.assign(nb, 1.0);

  std::vector<double> next(nb, 0.0);
  ShardRoundStats rs;
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    const std::vector<double>& x =
        params.use_citation ? *influence : ones;
    out->last_x = x;
    MASS_RETURN_IF_ERROR(IterateRound(x, ap, &rs));
    if (params.round_stall) params.round_stall();

    for (size_t s = 0; s < rs.spmv_us.size(); ++s) {
      out->spmv_us[s] += rs.spmv_us[s];
    }
    out->round_exchange_us.push_back(rs.exchange_us);
    out->exchange_us_total += rs.exchange_us;
    out->bytes_total += rs.bytes;

    for (size_t b = 0; b < nb; ++b) {
      next[b] = alpha * (*ap)[b] + (1.0 - alpha) * gl[b];
    }
    MeanNormalize(&next);
    if (params.damping > 0.0) {
      for (size_t b = 0; b < nb; ++b) {
        next[b] = (1.0 - params.damping) * next[b] +
                  params.damping * (*influence)[b];
      }
    }
    const double delta = ParallelReduce(
        params.pool, nb, 0.0,
        [&](size_t begin, size_t end) {
          double m = 0.0;
          for (size_t b = begin; b < end; ++b) {
            m = std::max(m, std::abs(next[b] - (*influence)[b]));
          }
          return m;
        },
        [](double a, double b) { return std::max(a, b); });
    influence->swap(next);
    out->iterations = iter + 1;
    out->final_residual = delta;
    out->residuals.push_back({iter + 1, delta});
    if (delta < params.tolerance) {
      out->converged = true;
      break;
    }
  }
  return Status::OK();
}

Result<std::vector<ShardSummaryPayload>> ShardCoordinator::Snapshot() {
  if (transport_ == nullptr) {
    return Status::FailedPrecondition("shard runtime not started");
  }
  std::vector<ShardSummaryPayload> summaries(num_shards());
  Status st = FanOut(
      runtime::MessageType::kSnapshotRequest,
      runtime::MessageType::kSnapshotResult,
      [](size_t s, uint64_t seq, std::vector<uint8_t>* out) {
        ControlPayload p;
        p.shard = static_cast<uint32_t>(s);
        p.seq = seq;
        EncodeControl(p, out);
      },
      [&summaries](size_t s, const runtime::Message& reply) {
        return DecodeShardSummary(reply.payload.data(), reply.payload.size(),
                                  &summaries[s]);
      });
  if (!st.ok()) return st;
  return summaries;
}

void ShardCoordinator::Shutdown() {
  if (transport_ == nullptr) return;
  for (size_t s = 0; s < transport_->num_workers(); ++s) {
    if (!transport_->WorkerAlive(s)) continue;
    runtime::Endpoint* ep = transport_->endpoint(s);
    if (ep == nullptr) continue;
    runtime::Message m;
    m.type = runtime::MessageType::kShutdown;
    // Best-effort politeness; Stop() handles workers that miss it.
    (void)ep->Send(std::move(m), /*deadline_micros=*/100'000);
  }
  transport_->Stop();
  transport_.reset();
  loaded_ = false;
}

}  // namespace mass::shard
