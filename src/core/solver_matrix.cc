#include "core/solver_matrix.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"

namespace mass {

std::vector<size_t> EffectiveTcCounts(
    const Corpus& corpus, const std::vector<double>& comment_recency) {
  const size_t nb = corpus.num_bloggers();
  std::vector<size_t> tc(nb, 0);
  for (size_t b = 0; b < nb; ++b) {
    size_t count = 0;
    for (CommentId cid : corpus.CommentsByCommenter(static_cast<BloggerId>(b))) {
      if (comment_recency[cid] > 0.0) ++count;
    }
    tc[b] = count;
  }
  return tc;
}

SolverMatrix CompileSolverMatrix(const Corpus& corpus,
                                 const EngineOptions& options,
                                 const std::vector<double>& post_quality,
                                 const std::vector<double>& post_recency,
                                 const std::vector<double>& comment_sf,
                                 const std::vector<double>& comment_recency,
                                 ThreadPool* pool) {
  const size_t nb = corpus.num_bloggers();
  const size_t np = corpus.num_posts();
  const size_t nc = corpus.num_comments();
  const double beta = options.beta;

  SolverMatrix m;
  m.num_bloggers = nb;

  // q(b) = β · Σ quality·recency over b's posts. The posts-by-blogger
  // index gives ascending post ids, matching the reference solver's
  // accumulation order.
  m.quality.assign(nb, 0.0);
  for (size_t b = 0; b < nb; ++b) {
    double q = 0.0;
    for (PostId p : corpus.PostsBy(static_cast<BloggerId>(b))) {
      q += beta * post_quality[p] * post_recency[p];
    }
    m.quality[b] = q;
  }

  // Each comment's commenter, recovered from the by-commenter index, and
  // 1/TC per blogger — so w(c) = SF·recency/TC needs no Comment records
  // and one divide per blogger instead of one per comment. TC is the
  // effective count under the window (== TotalComments with no window).
  std::vector<BloggerId> commenter_of(nc, 0);
  std::vector<double> inv_tc(nb, 1.0);
  std::vector<size_t> eff_tc;
  if (options.use_tc_normalization) {
    eff_tc = EffectiveTcCounts(corpus, comment_recency);
  }
  for (size_t b = 0; b < nb; ++b) {
    const BloggerId bid = static_cast<BloggerId>(b);
    if (options.use_tc_normalization) {
      double tc = static_cast<double>(eff_tc[b]);
      inv_tc[b] = tc > 0.0 ? 1.0 / tc : 1.0;
    }
    for (CommentId cid : corpus.CommentsByCommenter(bid)) {
      commenter_of[cid] = bid;
    }
  }

  // Per-post author, inverted from the by-blogger index (the Post record
  // itself stays untouched).
  std::vector<BloggerId> post_author(np, 0);
  for (size_t b = 0; b < nb; ++b) {
    for (PostId p : corpus.PostsBy(static_cast<BloggerId>(b))) {
      post_author[p] = static_cast<BloggerId>(b);
    }
  }

  // Post-grouped (commenter, w) mirror: the final reconstruction streams
  // it sequentially. The same pass records each comment's post author so
  // the CSR fill below never needs the Comment records.
  m.post_offsets.assign(np + 1, 0);
  for (size_t p = 0; p < np; ++p) {
    m.post_offsets[p + 1] =
        m.post_offsets[p] + corpus.CommentsOn(static_cast<PostId>(p)).size();
  }
  m.post_commenter.resize(nc);
  m.post_weight.resize(nc);
  std::vector<BloggerId> author_of(nc, 0);
  ParallelFor(pool, np, [&](size_t begin, size_t end) {
    for (size_t p = begin; p < end; ++p) {
      size_t k = m.post_offsets[p];
      const BloggerId a = post_author[p];
      for (CommentId cid : corpus.CommentsOn(static_cast<PostId>(p))) {
        const BloggerId who = commenter_of[cid];
        m.post_commenter[k] = who;
        m.post_weight[k] =
            comment_sf[cid] * comment_recency[cid] * inv_tc[who];
        author_of[cid] = a;
        ++k;
      }
    }
  });

  // Raw row sizes: row b holds one slot per comment on b's posts.
  std::vector<size_t> raw_offsets(nb + 1, 0);
  for (size_t b = 0; b < nb; ++b) {
    size_t count = 0;
    for (PostId p : corpus.PostsBy(static_cast<BloggerId>(b))) {
      count += m.post_offsets[p + 1] - m.post_offsets[p];
    }
    raw_offsets[b + 1] = raw_offsets[b] + count;
  }
  std::vector<BloggerId> raw_cols(nc);
  std::vector<double> raw_vals(nc);

  // CSR fill without sorting: walking commenters in ascending id order
  // makes each row's columns arrive nondecreasing, so duplicates (the
  // same commenter hitting the same author again) are always the row's
  // last entry and merge in place. Serial by construction — rows share
  // cursors — but it is one branchy linear pass instead of a per-row
  // sort, and the duplicate sums stay deterministic (ascending comment
  // order within each commenter).
  const double comment_scale = 1.0 - beta;
  std::vector<size_t> cursor(raw_offsets.begin(), raw_offsets.end() - 1);
  for (size_t b2 = 0; b2 < nb; ++b2) {
    const BloggerId col = static_cast<BloggerId>(b2);
    const double scaled_inv_tc = comment_scale * inv_tc[b2];
    for (CommentId cid : corpus.CommentsByCommenter(col)) {
      const BloggerId a = author_of[cid];
      const double w = comment_sf[cid] * comment_recency[cid] * scaled_inv_tc;
      size_t& cur = cursor[a];
      if (cur > raw_offsets[a] && raw_cols[cur - 1] == col) {
        raw_vals[cur - 1] += w;
      } else {
        raw_cols[cur] = col;
        raw_vals[cur] = w;
        ++cur;
      }
    }
  }
  std::vector<size_t> uniq(nb, 0);
  for (size_t b = 0; b < nb; ++b) uniq[b] = cursor[b] - raw_offsets[b];

  // Compact the merged prefixes into the final CSR arrays.
  m.row_offsets.assign(nb + 1, 0);
  for (size_t b = 0; b < nb; ++b) m.row_offsets[b + 1] = m.row_offsets[b] + uniq[b];
  m.cols.resize(m.row_offsets[nb]);
  m.values.resize(m.row_offsets[nb]);
  ParallelFor(pool, nb, [&](size_t begin, size_t end) {
    for (size_t b = begin; b < end; ++b) {
      const size_t src = raw_offsets[b];
      const size_t dst = m.row_offsets[b];
      for (size_t i = 0; i < uniq[b]; ++i) {
        m.cols[dst + i] = raw_cols[src + i];
        m.values[dst + i] = raw_vals[src + i];
      }
    }
  });
  return m;
}

void ExtendSolverMatrix(SolverMatrix* m, const Corpus& corpus,
                        const EngineOptions& options,
                        const std::vector<double>& post_quality,
                        const std::vector<double>& post_recency,
                        const std::vector<double>& comment_sf,
                        const std::vector<double>& comment_recency,
                        ThreadPool* pool) {
  const size_t nb0 = m->num_bloggers;
  const size_t np0 = m->post_offsets.empty() ? 0 : m->post_offsets.size() - 1;
  const size_t nc0 = m->post_weight.size();
  const size_t nb = corpus.num_bloggers();
  const size_t np = corpus.num_posts();
  const size_t nc = corpus.num_comments();
  const double beta = options.beta;
  const double comment_scale = 1.0 - beta;

  // q is rebuilt whole: quality is normalized by the corpus-mean post
  // length, which shifts whenever posts arrive. Same accumulation order
  // as the compile.
  m->quality.assign(nb, 0.0);
  for (size_t b = 0; b < nb; ++b) {
    double q = 0.0;
    for (PostId p : corpus.PostsBy(static_cast<BloggerId>(b))) {
      q += beta * post_quality[p] * post_recency[p];
    }
    m->quality[b] = q;
  }

  // 1/TC after the delta, and the ratio each pre-existing column must be
  // rescaled by. The old TC is recovered by subtracting the commenter's
  // fresh comments, so no prior-state snapshot is needed. Counts are the
  // window-effective ones (a fresh comment outside the window changes no
  // normalization), matching the compile.
  std::vector<size_t> fresh_cc(nb, 0);
  for (size_t cid = nc0; cid < nc; ++cid) {
    if (comment_recency[cid] > 0.0) {
      ++fresh_cc[corpus.comment(static_cast<CommentId>(cid)).commenter];
    }
  }
  std::vector<double> inv_tc(nb, 1.0);
  std::vector<double> rescale(nb0, 1.0);
  bool any_rescale = false;
  if (options.use_tc_normalization) {
    const std::vector<size_t> eff_tc = EffectiveTcCounts(corpus, comment_recency);
    for (size_t b = 0; b < nb; ++b) {
      const double tc = static_cast<double>(eff_tc[b]);
      inv_tc[b] = tc > 0.0 ? 1.0 / tc : 1.0;
      if (b < nb0 && fresh_cc[b] > 0) {
        const double tc_old = tc - static_cast<double>(fresh_cc[b]);
        const double inv_old = tc_old > 0.0 ? 1.0 / tc_old : 1.0;
        if (inv_tc[b] != inv_old) {
          rescale[b] = inv_tc[b] / inv_old;
          any_rescale = true;
        }
      }
    }
  }
  if (any_rescale) {
    const BloggerId* cols = m->cols.data();
    double* vals = m->values.data();
    ParallelFor(pool, m->cols.size(), [&, cols, vals](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) vals[k] *= rescale[cols[k]];
    });
    const BloggerId* pc = m->post_commenter.data();
    double* pw = m->post_weight.data();
    ParallelFor(pool, nc0, [&, pc, pw](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) pw[k] *= rescale[pc[k]];
    });
  }

  // Fresh CSR contributions grouped per author row; per-column sums run
  // in ascending comment order, matching the compile.
  std::vector<std::vector<std::pair<BloggerId, double>>> fresh(nb);
  for (size_t cid = nc0; cid < nc; ++cid) {
    const Comment& c = corpus.comment(static_cast<CommentId>(cid));
    const BloggerId a = corpus.post(c.post).author;
    const double w = comment_sf[cid] * comment_recency[cid] *
                     (comment_scale * inv_tc[c.commenter]);
    fresh[a].emplace_back(c.commenter, w);
  }
  for (auto& row : fresh) {
    if (row.empty()) continue;
    std::stable_sort(row.begin(), row.end(),
                     [](const std::pair<BloggerId, double>& x,
                        const std::pair<BloggerId, double>& y) {
                       return x.first < y.first;
                     });
    size_t w = 0;
    for (size_t i = 0; i < row.size();) {
      const BloggerId col = row[i].first;
      double sum = row[i].second;
      for (++i; i < row.size() && row[i].first == col; ++i) {
        sum += row[i].second;
      }
      row[w++] = {col, sum};
    }
    row.resize(w);
  }

  // Sorted merge of each old row with its fresh entries; rows past nb0
  // are entirely fresh.
  std::vector<size_t> out_off(nb + 1, 0);
  std::vector<BloggerId> out_cols;
  std::vector<double> out_vals;
  out_cols.reserve(m->cols.size() + (nc - nc0));
  out_vals.reserve(m->cols.size() + (nc - nc0));
  for (size_t b = 0; b < nb; ++b) {
    size_t i = b < nb0 ? m->row_offsets[b] : 0;
    const size_t oe = b < nb0 ? m->row_offsets[b + 1] : 0;
    const auto& f = fresh[b];
    size_t j = 0;
    while (i < oe || j < f.size()) {
      if (j >= f.size() || (i < oe && m->cols[i] < f[j].first)) {
        out_cols.push_back(m->cols[i]);
        out_vals.push_back(m->values[i]);
        ++i;
      } else if (i >= oe || f[j].first < m->cols[i]) {
        out_cols.push_back(f[j].first);
        out_vals.push_back(f[j].second);
        ++j;
      } else {
        out_cols.push_back(m->cols[i]);
        out_vals.push_back(m->values[i] + f[j].second);
        ++i;
        ++j;
      }
    }
    out_off[b + 1] = out_cols.size();
  }
  m->row_offsets = std::move(out_off);
  m->cols = std::move(out_cols);
  m->values = std::move(out_vals);

  // Post mirror: per-post comment lists ascend by id and old ids precede
  // fresh ones, so each old span is copied and the fresh tail appended.
  std::vector<size_t> old_post_off = std::move(m->post_offsets);
  std::vector<BloggerId> old_pc = std::move(m->post_commenter);
  std::vector<double> old_pw = std::move(m->post_weight);
  m->post_offsets.assign(np + 1, 0);
  for (size_t p = 0; p < np; ++p) {
    m->post_offsets[p + 1] =
        m->post_offsets[p] + corpus.CommentsOn(static_cast<PostId>(p)).size();
  }
  m->post_commenter.resize(nc);
  m->post_weight.resize(nc);
  ParallelFor(pool, np, [&](size_t begin, size_t end) {
    for (size_t p = begin; p < end; ++p) {
      size_t k = m->post_offsets[p];
      if (p < np0) {
        for (size_t s = old_post_off[p]; s < old_post_off[p + 1]; ++s) {
          m->post_commenter[k] = old_pc[s];
          m->post_weight[k] = old_pw[s];
          ++k;
        }
      }
      for (CommentId cid : corpus.CommentsOn(static_cast<PostId>(p))) {
        if (cid < nc0) continue;
        const BloggerId who = corpus.comment(cid).commenter;
        m->post_commenter[k] = who;
        m->post_weight[k] =
            comment_sf[cid] * comment_recency[cid] * inv_tc[who];
        ++k;
      }
    }
  });
  m->num_bloggers = nb;
}

void ShrinkSolverMatrix(SolverMatrix* m, const Corpus& corpus,
                        const EngineOptions& options,
                        const std::vector<double>& post_quality,
                        const std::vector<double>& post_recency,
                        const std::vector<double>& comment_sf,
                        const std::vector<double>& comment_recency,
                        const ShrinkPlan& plan, ThreadPool* pool) {
  const size_t nb = corpus.num_bloggers();
  const size_t np = corpus.num_posts();
  const size_t nc = corpus.num_comments();
  const double beta = options.beta;
  const double comment_scale = 1.0 - beta;

  // q rebuilt whole, same accumulation order as the compile (the windowed
  // quality mean shifts whenever the post set changes).
  m->quality.assign(nb, 0.0);
  for (size_t b = 0; b < nb; ++b) {
    double q = 0.0;
    for (PostId p : corpus.PostsBy(static_cast<BloggerId>(b))) {
      q += beta * post_quality[p] * post_recency[p];
    }
    m->quality[b] = q;
  }

  // Post-expiry 1/TC and the per-column ratio clean rows are rescaled by.
  std::vector<double> inv_tc(nb, 1.0);
  std::vector<double> rescale(nb, 1.0);
  bool any_rescale = false;
  if (options.use_tc_normalization) {
    const std::vector<size_t> eff_tc = EffectiveTcCounts(corpus, comment_recency);
    for (size_t b = 0; b < nb; ++b) {
      const double tc = static_cast<double>(eff_tc[b]);
      inv_tc[b] = tc > 0.0 ? 1.0 / tc : 1.0;
      if (b < plan.old_inv_tc.size() && inv_tc[b] != plan.old_inv_tc[b]) {
        rescale[b] = inv_tc[b] / plan.old_inv_tc[b];
        any_rescale = true;
      }
    }
  }

  // Dirty rows are rebuilt from the compacted corpus: collect the row's
  // (commenter, comment) pairs and sort them so duplicate-column sums run
  // in ascending comment order within each commenter — the compile's exact
  // summation order, making the rebuilt row bit-identical to a fresh
  // compile. Clean rows keep their structure (none of their comments were
  // removed or re-weighted) and only pick up the column rescale.
  std::vector<size_t> out_off(nb + 1, 0);
  std::vector<BloggerId> out_cols;
  std::vector<double> out_vals;
  out_cols.reserve(m->cols.size());
  out_vals.reserve(m->cols.size());
  std::vector<std::pair<BloggerId, CommentId>> row_entries;
  for (size_t b = 0; b < nb; ++b) {
    const bool dirty = b < plan.dirty_row.size() && plan.dirty_row[b] != 0;
    if (!dirty) {
      for (size_t i = m->row_offsets[b]; i < m->row_offsets[b + 1]; ++i) {
        out_cols.push_back(m->cols[i]);
        out_vals.push_back(any_rescale ? m->values[i] * rescale[m->cols[i]]
                                       : m->values[i]);
      }
    } else {
      row_entries.clear();
      for (PostId p : corpus.PostsBy(static_cast<BloggerId>(b))) {
        for (CommentId cid : corpus.CommentsOn(p)) {
          row_entries.emplace_back(corpus.comment(cid).commenter, cid);
        }
      }
      std::sort(row_entries.begin(), row_entries.end());
      for (size_t i = 0; i < row_entries.size();) {
        const BloggerId col = row_entries[i].first;
        const double scaled_inv_tc = comment_scale * inv_tc[col];
        double sum = 0.0;
        for (; i < row_entries.size() && row_entries[i].first == col; ++i) {
          const CommentId cid = row_entries[i].second;
          sum += comment_sf[cid] * comment_recency[cid] * scaled_inv_tc;
        }
        out_cols.push_back(col);
        out_vals.push_back(sum);
      }
    }
    out_off[b + 1] = out_cols.size();
  }
  m->row_offsets = std::move(out_off);
  m->cols = std::move(out_cols);
  m->values = std::move(out_vals);

  // Post mirror rebuilt whole: the compaction renumbered every post id.
  std::vector<BloggerId> commenter_of(nc, 0);
  for (size_t b = 0; b < nb; ++b) {
    for (CommentId cid : corpus.CommentsByCommenter(static_cast<BloggerId>(b))) {
      commenter_of[cid] = static_cast<BloggerId>(b);
    }
  }
  m->post_offsets.assign(np + 1, 0);
  for (size_t p = 0; p < np; ++p) {
    m->post_offsets[p + 1] =
        m->post_offsets[p] + corpus.CommentsOn(static_cast<PostId>(p)).size();
  }
  m->post_commenter.resize(nc);
  m->post_weight.resize(nc);
  m->post_commenter.shrink_to_fit();
  m->post_weight.shrink_to_fit();
  ParallelFor(pool, np, [&](size_t begin, size_t end) {
    for (size_t p = begin; p < end; ++p) {
      size_t k = m->post_offsets[p];
      for (CommentId cid : corpus.CommentsOn(static_cast<PostId>(p))) {
        const BloggerId who = commenter_of[cid];
        m->post_commenter[k] = who;
        m->post_weight[k] =
            comment_sf[cid] * comment_recency[cid] * inv_tc[who];
        ++k;
      }
    }
  });
  m->num_bloggers = nb;
}

void SolverSpMV(const SolverMatrix& m, const std::vector<double>& x,
                std::vector<double>* y, ThreadPool* pool) {
  const size_t nb = m.num_bloggers;
  y->resize(nb);
  const size_t* off = m.row_offsets.data();
  const BloggerId* cols = m.cols.data();
  const double* vals = m.values.data();
  const double* q = m.quality.data();
  const double* xv = x.data();
  double* yv = y->data();
  ParallelFor(pool, nb, [=](size_t begin, size_t end) {
    for (size_t b = begin; b < end; ++b) {
      double acc = q[b];
      for (size_t i = off[b]; i < off[b + 1]; ++i) acc += vals[i] * xv[cols[i]];
      yv[b] = acc;
    }
  });
}

}  // namespace mass
