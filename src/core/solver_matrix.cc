#include "core/solver_matrix.h"

#include "common/parallel.h"

namespace mass {

SolverMatrix CompileSolverMatrix(const Corpus& corpus,
                                 const EngineOptions& options,
                                 const std::vector<double>& post_quality,
                                 const std::vector<double>& post_recency,
                                 const std::vector<double>& comment_sf,
                                 const std::vector<double>& comment_recency,
                                 ThreadPool* pool) {
  const size_t nb = corpus.num_bloggers();
  const size_t np = corpus.num_posts();
  const size_t nc = corpus.num_comments();
  const double beta = options.beta;

  SolverMatrix m;
  m.num_bloggers = nb;

  // q(b) = β · Σ quality·recency over b's posts. The posts-by-blogger
  // index gives ascending post ids, matching the reference solver's
  // accumulation order.
  m.quality.assign(nb, 0.0);
  for (size_t b = 0; b < nb; ++b) {
    double q = 0.0;
    for (PostId p : corpus.PostsBy(static_cast<BloggerId>(b))) {
      q += beta * post_quality[p] * post_recency[p];
    }
    m.quality[b] = q;
  }

  // Each comment's commenter, recovered from the by-commenter index, and
  // 1/TC per blogger — so w(c) = SF·recency/TC needs no Comment records
  // and one divide per blogger instead of one per comment.
  std::vector<BloggerId> commenter_of(nc, 0);
  std::vector<double> inv_tc(nb, 1.0);
  for (size_t b = 0; b < nb; ++b) {
    const BloggerId bid = static_cast<BloggerId>(b);
    if (options.use_tc_normalization) {
      double tc = static_cast<double>(corpus.TotalComments(bid));
      inv_tc[b] = tc > 0.0 ? 1.0 / tc : 1.0;
    }
    for (CommentId cid : corpus.CommentsByCommenter(bid)) {
      commenter_of[cid] = bid;
    }
  }

  // Per-post author, inverted from the by-blogger index (the Post record
  // itself stays untouched).
  std::vector<BloggerId> post_author(np, 0);
  for (size_t b = 0; b < nb; ++b) {
    for (PostId p : corpus.PostsBy(static_cast<BloggerId>(b))) {
      post_author[p] = static_cast<BloggerId>(b);
    }
  }

  // Post-grouped (commenter, w) mirror: the final reconstruction streams
  // it sequentially. The same pass records each comment's post author so
  // the CSR fill below never needs the Comment records.
  m.post_offsets.assign(np + 1, 0);
  for (size_t p = 0; p < np; ++p) {
    m.post_offsets[p + 1] =
        m.post_offsets[p] + corpus.CommentsOn(static_cast<PostId>(p)).size();
  }
  m.post_commenter.resize(nc);
  m.post_weight.resize(nc);
  std::vector<BloggerId> author_of(nc, 0);
  ParallelFor(pool, np, [&](size_t begin, size_t end) {
    for (size_t p = begin; p < end; ++p) {
      size_t k = m.post_offsets[p];
      const BloggerId a = post_author[p];
      for (CommentId cid : corpus.CommentsOn(static_cast<PostId>(p))) {
        const BloggerId who = commenter_of[cid];
        m.post_commenter[k] = who;
        m.post_weight[k] =
            comment_sf[cid] * comment_recency[cid] * inv_tc[who];
        author_of[cid] = a;
        ++k;
      }
    }
  });

  // Raw row sizes: row b holds one slot per comment on b's posts.
  std::vector<size_t> raw_offsets(nb + 1, 0);
  for (size_t b = 0; b < nb; ++b) {
    size_t count = 0;
    for (PostId p : corpus.PostsBy(static_cast<BloggerId>(b))) {
      count += m.post_offsets[p + 1] - m.post_offsets[p];
    }
    raw_offsets[b + 1] = raw_offsets[b] + count;
  }
  std::vector<BloggerId> raw_cols(nc);
  std::vector<double> raw_vals(nc);

  // CSR fill without sorting: walking commenters in ascending id order
  // makes each row's columns arrive nondecreasing, so duplicates (the
  // same commenter hitting the same author again) are always the row's
  // last entry and merge in place. Serial by construction — rows share
  // cursors — but it is one branchy linear pass instead of a per-row
  // sort, and the duplicate sums stay deterministic (ascending comment
  // order within each commenter).
  const double comment_scale = 1.0 - beta;
  std::vector<size_t> cursor(raw_offsets.begin(), raw_offsets.end() - 1);
  for (size_t b2 = 0; b2 < nb; ++b2) {
    const BloggerId col = static_cast<BloggerId>(b2);
    const double scaled_inv_tc = comment_scale * inv_tc[b2];
    for (CommentId cid : corpus.CommentsByCommenter(col)) {
      const BloggerId a = author_of[cid];
      const double w = comment_sf[cid] * comment_recency[cid] * scaled_inv_tc;
      size_t& cur = cursor[a];
      if (cur > raw_offsets[a] && raw_cols[cur - 1] == col) {
        raw_vals[cur - 1] += w;
      } else {
        raw_cols[cur] = col;
        raw_vals[cur] = w;
        ++cur;
      }
    }
  }
  std::vector<size_t> uniq(nb, 0);
  for (size_t b = 0; b < nb; ++b) uniq[b] = cursor[b] - raw_offsets[b];

  // Compact the merged prefixes into the final CSR arrays.
  m.row_offsets.assign(nb + 1, 0);
  for (size_t b = 0; b < nb; ++b) m.row_offsets[b + 1] = m.row_offsets[b] + uniq[b];
  m.cols.resize(m.row_offsets[nb]);
  m.values.resize(m.row_offsets[nb]);
  ParallelFor(pool, nb, [&](size_t begin, size_t end) {
    for (size_t b = begin; b < end; ++b) {
      const size_t src = raw_offsets[b];
      const size_t dst = m.row_offsets[b];
      for (size_t i = 0; i < uniq[b]; ++i) {
        m.cols[dst + i] = raw_cols[src + i];
        m.values[dst + i] = raw_vals[src + i];
      }
    }
  });
  return m;
}

void SolverSpMV(const SolverMatrix& m, const std::vector<double>& x,
                std::vector<double>* y, ThreadPool* pool) {
  const size_t nb = m.num_bloggers;
  y->resize(nb);
  const size_t* off = m.row_offsets.data();
  const BloggerId* cols = m.cols.data();
  const double* vals = m.values.data();
  const double* q = m.quality.data();
  const double* xv = x.data();
  double* yv = y->data();
  ParallelFor(pool, nb, [=](size_t begin, size_t end) {
    for (size_t b = begin; b < end; ++b) {
      double acc = q[b];
      for (size_t i = off[b]; i < off[b + 1]; ++i) acc += vals[i] * xv[cols[i]];
      yv[b] = acc;
    }
  });
}

}  // namespace mass
