#include "core/topk.h"

#include <algorithm>
#include <queue>

#include "core/influence_engine.h"

namespace mass {

namespace {

// Orders by score descending, then id ascending.
bool Better(const ScoredBlogger& a, const ScoredBlogger& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

}  // namespace

std::vector<ScoredBlogger> TopKByScore(const std::vector<double>& scores,
                                       size_t k) {
  if (k == 0 || scores.empty()) return {};
  k = std::min(k, scores.size());
  // Min-heap of the current best k; the heap top is the worst kept entry.
  auto worse = [](const ScoredBlogger& a, const ScoredBlogger& b) {
    return Better(a, b);
  };
  std::priority_queue<ScoredBlogger, std::vector<ScoredBlogger>,
                      decltype(worse)>
      heap(worse);
  for (size_t i = 0; i < scores.size(); ++i) {
    ScoredBlogger cand{static_cast<BloggerId>(i), scores[i]};
    if (heap.size() < k) {
      heap.push(cand);
    } else if (Better(cand, heap.top())) {
      heap.pop();
      heap.push(cand);
    }
  }
  std::vector<ScoredBlogger> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

std::vector<ScoredBlogger> TopKByScoreFiltered(
    const std::vector<double>& scores, size_t k,
    const std::function<bool(BloggerId)>& keep) {
  if (k == 0 || scores.empty()) return {};
  auto worse = [](const ScoredBlogger& a, const ScoredBlogger& b) {
    return Better(a, b);
  };
  std::priority_queue<ScoredBlogger, std::vector<ScoredBlogger>,
                      decltype(worse)>
      heap(worse);
  for (size_t i = 0; i < scores.size(); ++i) {
    BloggerId id = static_cast<BloggerId>(i);
    if (keep && !keep(id)) continue;
    ScoredBlogger cand{id, scores[i]};
    if (heap.size() < k) {
      heap.push(cand);
    } else if (Better(cand, heap.top())) {
      heap.pop();
      heap.push(cand);
    }
  }
  std::vector<ScoredBlogger> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

std::vector<ScoredBlogger> TopKByScoreFullSort(
    const std::vector<double>& scores, size_t k) {
  std::vector<ScoredBlogger> all(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    all[i] = ScoredBlogger{static_cast<BloggerId>(i), scores[i]};
  }
  std::sort(all.begin(), all.end(), Better);
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace mass
