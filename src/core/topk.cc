#include "core/topk.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/analysis_snapshot.h"

namespace mass {

// Orders by score descending, then id ascending. NaN scores sort last
// (among themselves by id): `a.score > b.score` is false for any NaN
// operand, which would violate strict weak ordering and make std::sort
// undefined on a vector that picked up a NaN — ranking must degrade
// deterministically instead.
bool BetterScored(const ScoredBlogger& a, const ScoredBlogger& b) {
  const bool a_nan = std::isnan(a.score);
  const bool b_nan = std::isnan(b.score);
  if (a_nan != b_nan) return b_nan;
  if (!a_nan && a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

namespace {

bool Better(const ScoredBlogger& a, const ScoredBlogger& b) {
  return BetterScored(a, b);
}

}  // namespace

std::vector<ScoredBlogger> TopKByScore(const std::vector<double>& scores,
                                       size_t k) {
  if (k == 0 || scores.empty()) return {};
  k = std::min(k, scores.size());
  // Min-heap of the current best k; the heap top is the worst kept entry.
  auto worse = [](const ScoredBlogger& a, const ScoredBlogger& b) {
    return Better(a, b);
  };
  std::priority_queue<ScoredBlogger, std::vector<ScoredBlogger>,
                      decltype(worse)>
      heap(worse);
  for (size_t i = 0; i < scores.size(); ++i) {
    ScoredBlogger cand{static_cast<BloggerId>(i), scores[i]};
    if (heap.size() < k) {
      heap.push(cand);
    } else if (Better(cand, heap.top())) {
      heap.pop();
      heap.push(cand);
    }
  }
  std::vector<ScoredBlogger> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

std::vector<ScoredBlogger> TopKByScoreFiltered(
    const std::vector<double>& scores, size_t k,
    const std::function<bool(BloggerId)>& keep) {
  if (k == 0 || scores.empty()) return {};
  auto worse = [](const ScoredBlogger& a, const ScoredBlogger& b) {
    return Better(a, b);
  };
  std::priority_queue<ScoredBlogger, std::vector<ScoredBlogger>,
                      decltype(worse)>
      heap(worse);
  for (size_t i = 0; i < scores.size(); ++i) {
    BloggerId id = static_cast<BloggerId>(i);
    if (keep && !keep(id)) continue;
    ScoredBlogger cand{id, scores[i]};
    if (heap.size() < k) {
      heap.push(cand);
    } else if (Better(cand, heap.top())) {
      heap.pop();
      heap.push(cand);
    }
  }
  std::vector<ScoredBlogger> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

std::vector<ScoredBlogger> TopKByScoreFullSort(
    const std::vector<double>& scores, size_t k) {
  std::vector<ScoredBlogger> all = FullRanking(scores);
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<ScoredBlogger> FullRanking(const std::vector<double>& scores) {
  std::vector<ScoredBlogger> all(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    all[i] = ScoredBlogger{static_cast<BloggerId>(i), scores[i]};
  }
  std::sort(all.begin(), all.end(), Better);
  return all;
}

}  // namespace mass
