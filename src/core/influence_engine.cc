#include "core/influence_engine.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/engine_fault.h"
#include "core/quality.h"
#include "core/topk.h"
#include "linkanalysis/graph.h"
#include "linkanalysis/hits.h"
#include "model/corpus_delta.h"
#include "sentiment/sentiment_analyzer.h"

namespace mass {

// MeanNormalize lives in core/solver_matrix.h now, shared with the shard
// coordinator so every solve path normalizes with identical arithmetic.

const std::vector<double> MassEngine::kEmptyVector;

MassEngine::MassEngine(const Corpus* corpus, EngineOptions options)
    : corpus_(corpus), options_(options) {
  InitObservability();
}

MassEngine::MassEngine(Corpus* corpus, EngineOptions options)
    : corpus_(corpus), mutable_corpus_(corpus), options_(options) {
  InitObservability();
}

void MassEngine::InitObservability() {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    // Created once and kept across Retune() so counters accumulate over
    // the engine's lifetime.
    if (owned_metrics_ == nullptr) {
      owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    }
    metrics_ = owned_metrics_.get();
  }
  tracer_.SetMetrics(metrics_, "engine.stage.");
  analyze_runs_ = metrics_->GetCounter("engine.analyze_runs_total");
  retune_runs_ = metrics_->GetCounter("engine.retune_runs_total");
  ingest_runs_ = metrics_->GetCounter("engine.ingest_runs_total");
  ingest_rollbacks_ = metrics_->GetCounter("engine.ingest_rollbacks_total");
  expire_runs_ = metrics_->GetCounter("engine.expire_runs_total");
  expire_rollbacks_ = metrics_->GetCounter("engine.expire_rollbacks_total");
  mutation_added_posts_ =
      metrics_->GetCounter("engine.mutation.added_posts_total");
  mutation_added_comments_ =
      metrics_->GetCounter("engine.mutation.added_comments_total");
  mutation_removed_posts_ =
      metrics_->GetCounter("engine.mutation.removed_posts_total");
  mutation_removed_comments_ =
      metrics_->GetCounter("engine.mutation.removed_comments_total");
  mutation_matrix_nnz_ = metrics_->GetGauge("engine.mutation.matrix_nnz");
  mutation_nnz_delta_ = metrics_->GetGauge("engine.mutation.matrix_nnz_delta");
  mutation_warm_iterations_ =
      metrics_->GetGauge("engine.mutation.warm_start_iterations");
  solve_iterations_total_ =
      metrics_->GetCounter("engine.solve_iterations_total");
  topk_queries_ = metrics_->GetCounter("engine.topk_queries_total");
  topk_us_ = metrics_->GetHistogram("engine.topk_us");
  warm_saved_gauge_ = metrics_->GetGauge("engine.warm_start_iterations_saved");
  snapshot_publishes_ = metrics_->GetCounter("serve.snapshot.publishes");
  snapshot_publish_us_ = metrics_->GetHistogram("serve.snapshot.publish_us");
  shard_exchange_us_ = metrics_->GetHistogram("shard.boundary.exchange_us");
  shard_spmv_us_ = metrics_->GetHistogram("shard.spmv_us");
  shard_count_gauge_ = metrics_->GetGauge("shard.count");
  shard_halo_gauge_ = metrics_->GetGauge("shard.boundary.halo_entries");
  fault_ingest_failures_ =
      metrics_->GetCounter("engine.fault.ingest_failures_total");
  fault_publish_stalls_ =
      metrics_->GetCounter("engine.fault.publish_stalls_total");
  fault_spmv_slowdowns_ =
      metrics_->GetCounter("engine.fault.spmv_slowdowns_total");
  fault_transport_faults_ =
      metrics_->GetCounter("engine.fault.transport_faults_total");
  // The shard runtime captured the previous registry, fault plan, and
  // transport knobs at construction; drop it so the next sharded solve
  // rebuilds it under the options now in force (workers restart then).
  shard_runtime_.reset();
}

void MassEngine::PublishSnapshot(std::string_view run) {
  Stopwatch sw;
  if (const EngineFaultPlan* fp = options_.fault_plan) {
    // kPublish: delay the publish, inflating the age of whatever snapshot
    // readers currently hold — the stimulus for the serving layer's
    // max_staleness contract. The stall is charged to publish_us.
    if (DrawEngineFault(*fp, EngineFaultSite::kPublish, fault_publish_ops_++,
                        fp->publish_stall_rate)) {
      fault_publish_stalls_.Increment();
      EngineFaultSleep(*fp, fp->publish_stall_micros);
    }
  }
  auto snap = std::make_shared<AnalysisSnapshot>();
  snap->sequence = ++snapshot_sequence_;
  snap->produced_by = std::string(run);
  snap->num_domains = num_domains_;

  snap->influence = influence_;
  snap->general_links = gl_;
  snap->accumulated_post = ap_;
  snap->domain_influence = domain_influence_;
  snap->post_influence = post_influence_;
  snap->post_quality = post_quality_;
  snap->post_interests = post_interests_;
  snap->comment_sf = comment_sf_;

  // The snapshot must be self-contained: readers pin it while IngestDelta
  // reallocates the corpus vectors underneath, so every displayable field
  // is copied out here, never referenced back.
  const size_t nb = corpus_->num_bloggers();
  const size_t np = corpus_->num_posts();
  snap->blogger_names.reserve(nb);
  snap->blogger_urls.reserve(nb);
  snap->blogger_post_counts.reserve(nb);
  snap->blogger_comments_received.reserve(nb);
  snap->blogger_comments_written.reserve(nb);
  for (size_t b = 0; b < nb; ++b) {
    const BloggerId id = static_cast<BloggerId>(b);
    const Blogger& blogger = corpus_->blogger(id);
    snap->blogger_names.push_back(blogger.name);
    snap->blogger_urls.push_back(blogger.url);
    const auto& posts = corpus_->PostsBy(id);
    snap->blogger_post_counts.push_back(static_cast<uint32_t>(posts.size()));
    size_t received = 0;
    for (PostId p : posts) received += corpus_->CommentsOn(p).size();
    snap->blogger_comments_received.push_back(
        static_cast<uint32_t>(received));
    snap->blogger_comments_written.push_back(
        static_cast<uint32_t>(corpus_->TotalComments(id)));
  }
  snap->post_authors.reserve(np);
  snap->post_timestamps.reserve(np);
  snap->post_titles.reserve(np);
  for (size_t p = 0; p < np; ++p) {
    const Post& post = corpus_->post(static_cast<PostId>(p));
    snap->post_authors.push_back(post.author);
    snap->post_timestamps.push_back(post.timestamp);
    snap->post_titles.push_back(post.title);
  }

  if (sharded_valid_ && UseShardedSolve()) {
    // Composite snapshot: rankings stay shard-local (sorted per shard
    // against the same plan the solve partitioned by) and TopKGeneral /
    // TopKDomain merge them lazily — byte-identical ordering to the dense
    // build, without the global per-domain sorts on the publish path.
    snap->BuildDerivedSharded(shard_plan_.owner, shard_plan_.num_shards);
  } else {
    snap->BuildDerived();
  }
  snap->publish_time = std::chrono::steady_clock::now();
  const uint64_t seq = snap->sequence;
  snapshot_.store(std::move(snap), std::memory_order_release);
  // Sequence after snapshot: a lease that sees the new epoch re-pins a
  // snapshot at least this fresh (or retries on the next query).
  published_sequence_.store(seq, std::memory_order_release);
  snapshot_publishes_.Increment();
  snapshot_publish_us_.Record(
      static_cast<uint64_t>(sw.ElapsedSeconds() * 1e6));
}

EngineObservability MassEngine::Observability() const {
  EngineObservability out;
  out.metrics = metrics_->Snapshot();
  out.solve = solve_trace_;
  out.spans = tracer_.Spans();
  out.run = tracer_.run_name();
  return out;
}

Status MassEngine::ComputeGeneralLinks() {
  const size_t nb = corpus_->num_bloggers();
  const size_t nl = corpus_->num_links();
  if (nb == 0) {
    // Degenerate corpus: no bloggers means no link network. PageRank
    // would reject an empty graph, so short-circuit to an empty GL.
    gl_.clear();
    solve_trace_.pagerank_iterations = 0;
    gl_cache_valid_ = true;
    gl_cached_method_ = options_.gl_method;
    gl_cached_pagerank_ = options_.pagerank;
    gl_cached_iterations_ = 0;
    gl_cached_bloggers_ = 0;
    gl_cached_links_ = 0;
    return Status::OK();
  }
  // GL depends only on the corpus shape plus (gl_method, pagerank
  // options); every other toolbar knob leaves it untouched, so Retune()
  // and blogger/link-free ingests hit this cache and skip link analysis
  // entirely. The (bloggers, links) key catches ingests that grow the
  // graph — even a linkless new blogger changes PageRank's node count.
  // The corpus is append-only, so counts identify the graph.
  const bool pagerank_opts_same =
      options_.gl_method != GlMethod::kPageRank ||
      (gl_cached_pagerank_.damping == options_.pagerank.damping &&
       gl_cached_pagerank_.tolerance == options_.pagerank.tolerance &&
       gl_cached_pagerank_.max_iterations == options_.pagerank.max_iterations);
  if (gl_cache_valid_ && gl_cached_method_ == options_.gl_method &&
      pagerank_opts_same && gl_cached_bloggers_ == nb &&
      gl_cached_links_ == nl) {
    solve_trace_.pagerank_iterations = gl_cached_iterations_;
    return Status::OK();
  }
  Graph graph = Graph::FromCorpusLinks(*corpus_);
  switch (options_.gl_method) {
    case GlMethod::kPageRank: {
      PageRankOptions pr_options = options_.pagerank;
      pr_options.metrics = metrics_;
      MASS_ASSIGN_OR_RETURN(PageRankResult pr,
                            ComputePageRank(graph, pr_options));
      solve_trace_.pagerank_iterations = pr.iterations;
      gl_ = std::move(pr.scores);
      break;
    }
    case GlMethod::kHitsAuthority: {
      MASS_ASSIGN_OR_RETURN(HitsResult hits, ComputeHits(graph));
      solve_trace_.pagerank_iterations = hits.iterations;
      gl_ = std::move(hits.authority);
      break;
    }
    case GlMethod::kInlinkCount: {
      gl_.assign(corpus_->num_bloggers(), 0.0);
      for (size_t b = 0; b < gl_.size(); ++b) {
        gl_[b] = static_cast<double>(
            graph.InDegree(static_cast<uint32_t>(b)));
      }
      solve_trace_.pagerank_iterations = 0;
      break;
    }
  }
  MeanNormalize(&gl_);  // authority is scale-free; fix mean at 1
  gl_cache_valid_ = true;
  gl_cached_method_ = options_.gl_method;
  gl_cached_pagerank_ = options_.pagerank;
  gl_cached_iterations_ = solve_trace_.pagerank_iterations;
  gl_cached_bloggers_ = nb;
  gl_cached_links_ = nl;
  return Status::OK();
}

int64_t MassEngine::NewestTimestamp() const {
  int64_t newest = 0;
  for (const Post& p : corpus_->posts()) newest = std::max(newest, p.timestamp);
  for (const Comment& c : corpus_->comments()) {
    newest = std::max(newest, c.timestamp);
  }
  return newest;
}

void MassEngine::ComputeRecency() {
  post_recency_.assign(corpus_->num_posts(), 1.0);
  comment_recency_.assign(corpus_->num_comments(), 1.0);
  const WindowSpec& window = options_.window;
  const bool decay_on = options_.recency_half_life_days > 0.0;
  if (!decay_on && !window.enabled()) return;
  // The anchor ages are measured from: an explicit as_of, or the newest
  // timestamp present (corpus-relative — the pre-window behaviour).
  const int64_t anchor = window.as_of > 0 ? window.as_of : NewestTimestamp();
  const bool has_cutoff = window.horizon_secs > 0;
  const int64_t cutoff = anchor - window.horizon_secs;
  const double half_life_secs = options_.recency_half_life_days * 86'400.0;
  auto weight = [&](int64_t t) {
    if (has_cutoff && t < cutoff) return 0.0;  // aged out of the window
    const double age = static_cast<double>(anchor - t);
    if (age < 0.0) {
      // Newer than an explicit as_of: outside the window (a backdated
      // query must not see the future). Without as_of the anchor IS the
      // newest timestamp, so this only clamps same-instant entities.
      return window.as_of > 0 ? 0.0 : 1.0;
    }
    if (!decay_on) return 1.0;
    if (age == 0.0) return 1.0;
    return std::exp2(-age / half_life_secs);
  };
  for (const Post& p : corpus_->posts()) {
    post_recency_[p.id] = weight(p.timestamp);
  }
  for (const Comment& c : corpus_->comments()) {
    comment_recency_[c.id] = weight(c.timestamp);
  }
}

void MassEngine::ComputeQuality() {
  const size_t np = corpus_->num_posts();
  // Text stage (option-independent, cached across Retune and extended by
  // IngestDelta): raw lengths and copy-indicator counts.
  if (post_length_raw_.size() != np) {
    post_length_raw_.assign(np, 0.0);
    post_copy_indicators_.assign(np, 0);
    for (const Post& p : corpus_->posts()) {
      post_length_raw_[p.id] = static_cast<double>(PostLength(p));
      post_copy_indicators_[p.id] =
          CountCopyIndicators(p.title) + CountCopyIndicators(p.content);
    }
  }
  // Corpus-dependent normalization: the mean length shifts whenever posts
  // arrive, so it is re-derived every solve rather than cached. Under a
  // window only in-window posts (post_recency_ > 0, computed just before
  // this stage) enter the mean — a cold solve over the expired corpus must
  // see the same normalization as the windowed warm path.
  double total_len = 0.0;
  size_t counted = 0;
  const bool windowed = options_.window.enabled();
  for (size_t p = 0; p < np; ++p) {
    if (windowed && post_recency_[p] <= 0.0) continue;
    total_len += post_length_raw_[p];
    ++counted;
  }
  double mean_len =
      counted > 0 ? total_len / static_cast<double>(counted) : 1.0;
  if (mean_len <= 0.0) mean_len = 1.0;
  // Option-dependent derivation.
  NoveltyOptions novelty_opts;
  novelty_opts.copy_value = options_.novelty_copy_value;
  post_quality_.assign(np, 0.0);
  for (PostId p = 0; p < np; ++p) {
    double novelty = 1.0;
    if (options_.use_novelty && post_copy_indicators_[p] > 0) {
      novelty = std::max(
          novelty_opts.copy_floor,
          novelty_opts.copy_value -
              novelty_opts.per_extra_indicator *
                  static_cast<double>(post_copy_indicators_[p] - 1));
    }
    post_quality_[p] = post_length_raw_[p] / mean_len * novelty;
  }
}

void MassEngine::ComputeSentiment() {
  const size_t nc = corpus_->num_comments();
  // Text stage (cached): lexicon classification of every comment.
  if (comment_sentiment_.size() != nc) {
    comment_sentiment_.assign(nc, 0);
    SentimentAnalyzer analyzer;
    ParallelFor(nc, options_.analyzer_threads,
                [&](size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    const Comment& c =
                        corpus_->comment(static_cast<CommentId>(i));
                    comment_sentiment_[c.id] =
                        static_cast<int>(analyzer.Classify(c.text));
                  }
                });
  }
  // Option-dependent SF mapping.
  comment_sf_.assign(nc, options_.sentiment.neutral);
  if (!options_.use_attitude) {
    std::fill(comment_sf_.begin(), comment_sf_.end(), 1.0);
    return;
  }
  for (size_t i = 0; i < nc; ++i) {
    comment_sf_[i] = SentimentAnalyzer::FactorFor(
        static_cast<Sentiment>(comment_sentiment_[i]), options_.sentiment);
  }
}

Status MassEngine::ComputeInterests(const InterestMiner* miner) {
  const size_t np = corpus_->num_posts();
  post_interests_.assign(
      np, std::vector<double>(num_domains_,
                              num_domains_ ? 1.0 / num_domains_ : 0.0));
  if (miner != nullptr) {
    if (miner->num_domains() != num_domains_) {
      return Status::FailedPrecondition(
          "miner domain count does not match num_domains");
    }
    // InterestVector is const and stateless per call, so posts can be
    // classified from several threads.
    ParallelFor(corpus_->num_posts(), options_.analyzer_threads,
                [&](size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    const Post& p = corpus_->post(static_cast<PostId>(i));
                    post_interests_[p.id] =
                        miner->InterestVector(p.title + " " + p.content);
                  }
                });
    return Status::OK();
  }
  // Ground-truth fallback: one-hot on the generator's planted domain.
  for (const Post& p : corpus_->posts()) {
    if (p.true_domain < 0 ||
        static_cast<size_t>(p.true_domain) >= num_domains_) {
      return Status::FailedPrecondition(
          "no miner given and a post lacks a usable ground-truth domain");
    }
    std::fill(post_interests_[p.id].begin(), post_interests_[p.id].end(), 0.0);
    post_interests_[p.id][p.true_domain] = 1.0;
  }
  return Status::OK();
}

void MassEngine::ExtendTextCaches(size_t prior_posts, size_t prior_comments) {
  const size_t np = corpus_->num_posts();
  const size_t nc = corpus_->num_comments();
  // Raw lengths / copy indicators for the delta's posts. ComputeQuality()
  // re-derives the mean-length normalization itself, so appending raw
  // values is all the text stage needs.
  post_length_raw_.resize(np, 0.0);
  post_copy_indicators_.resize(np, 0);
  for (size_t p = prior_posts; p < np; ++p) {
    const Post& post = corpus_->post(static_cast<PostId>(p));
    post_length_raw_[p] = static_cast<double>(PostLength(post));
    post_copy_indicators_[p] =
        CountCopyIndicators(post.title) + CountCopyIndicators(post.content);
  }
  // Sentiment classes for the delta's comments.
  comment_sentiment_.resize(nc, 0);
  if (nc > prior_comments) {
    SentimentAnalyzer analyzer;
    ParallelFor(nc - prior_comments, options_.analyzer_threads,
                [&](size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    const Comment& c = corpus_->comment(
                        static_cast<CommentId>(prior_comments + i));
                    comment_sentiment_[c.id] =
                        static_cast<int>(analyzer.Classify(c.text));
                  }
                });
  }
}

Status MassEngine::ExtendInterests(const InterestMiner* miner,
                                   size_t prior_posts) {
  const size_t np = corpus_->num_posts();
  post_interests_.resize(
      np, std::vector<double>(num_domains_,
                              num_domains_ ? 1.0 / num_domains_ : 0.0));
  if (miner != nullptr) {
    if (miner->num_domains() != num_domains_) {
      return Status::FailedPrecondition(
          "miner domain count does not match num_domains");
    }
    ParallelFor(np - prior_posts, options_.analyzer_threads,
                [&](size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    const Post& p = corpus_->post(
                        static_cast<PostId>(prior_posts + i));
                    post_interests_[p.id] =
                        miner->InterestVector(p.title + " " + p.content);
                  }
                });
    return Status::OK();
  }
  for (size_t i = prior_posts; i < np; ++i) {
    const Post& p = corpus_->post(static_cast<PostId>(i));
    if (p.true_domain < 0 ||
        static_cast<size_t>(p.true_domain) >= num_domains_) {
      return Status::FailedPrecondition(
          "no miner given and a post lacks a usable ground-truth domain");
    }
    std::fill(post_interests_[p.id].begin(), post_interests_[p.id].end(), 0.0);
    post_interests_[p.id][p.true_domain] = 1.0;
  }
  return Status::OK();
}

int MassEngine::SolverThreadCount() const {
  return options_.solver_threads > 0 ? options_.solver_threads
                                     : options_.analyzer_threads;
}

ThreadPool* MassEngine::SolverPool() {
  const int threads = SolverThreadCount();
  if (threads <= 1) return nullptr;
  if (solver_pool_ == nullptr ||
      solver_pool_->num_threads() != static_cast<size_t>(threads)) {
    solver_pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
  }
  return solver_pool_.get();
}

Status MassEngine::SolveInfluence() {
  auto solve_span = tracer_.Span("solve");
  Stopwatch sw;
  if (options_.use_compiled_solver) {
    {
      auto span = tracer_.Span("compile_matrix");
      matrix_ = CompileSolverMatrix(*corpus_, options_, post_quality_,
                                    post_recency_, comment_sf_,
                                    comment_recency_, SolverPool());
      matrix_valid_ = true;
    }
    if (UseShardedSolve()) {
      {
        auto span = tracer_.Span("partition_shards");
        MASS_RETURN_IF_ERROR(BuildShardedSystem());
      }
      auto span = tracer_.Span("fixed_point");
      MASS_RETURN_IF_ERROR(IterateSharded(/*warm=*/false));
    } else {
      sharded_valid_ = false;
      auto span = tracer_.Span("fixed_point");
      IterateCompiled(/*warm=*/false);
    }
  } else {
    matrix_valid_ = false;
    sharded_valid_ = false;
    auto span = tracer_.Span("fixed_point");
    SolveInfluenceReference(/*warm=*/false);
  }
  solve_trace_.solve_seconds = sw.ElapsedSeconds();
  solve_iterations_total_.Increment(
      static_cast<uint64_t>(solve_trace_.iterations));
  last_full_solve_iterations_ = solve_trace_.iterations;
  warm_saved_gauge_.Set(0.0);
  return Status::OK();
}

Status MassEngine::SolveInfluenceIncremental() {
  auto solve_span = tracer_.Span("solve");
  Stopwatch sw;
  const bool warm = options_.warm_start_ingest;
  if (options_.use_compiled_solver) {
    // Extend the live matrix in place when possible; a corpus-relative
    // weighting anchor moves with every delta and re-decays every existing
    // weight, forcing the full recompile (an explicit window.as_of keeps
    // the anchor — and the matrix — stable).
    if (matrix_valid_ && options_.incremental_matrix &&
        WeightsAnchorStable()) {
      auto span = tracer_.Span("extend_matrix");
      ExtendSolverMatrix(&matrix_, *corpus_, options_, post_quality_,
                         post_recency_, comment_sf_, comment_recency_,
                         SolverPool());
    } else {
      auto span = tracer_.Span("compile_matrix");
      matrix_ = CompileSolverMatrix(*corpus_, options_, post_quality_,
                                    post_recency_, comment_sf_,
                                    comment_recency_, SolverPool());
    }
    if (options_.ingest_max_matrix_nnz > 0 &&
        matrix_.nnz() > options_.ingest_max_matrix_nnz) {
      // Resource guard: the extended matrix overflowed its budget. The
      // matrix may have been mutated in place, so mark it dead; the
      // transactional wrapper restores the pre-ingest copy.
      matrix_valid_ = false;
      sharded_valid_ = false;
      return Status::Aborted(
          StrFormat("ingest grew the solver matrix to %zu stored entries "
                    "(ingest_max_matrix_nnz = %zu)",
                    matrix_.nnz(), options_.ingest_max_matrix_nnz));
    }
    matrix_valid_ = true;
    if (UseShardedSolve()) {
      // The partition is rebuilt from the (extended or recompiled) global
      // matrix every solve: row splitting is cheap relative to the fixed
      // point, and it keeps the in-place ExtendSolverMatrix path oblivious
      // to sharding.
      {
        auto span = tracer_.Span("partition_shards");
        MASS_RETURN_IF_ERROR(BuildShardedSystem());
      }
      auto span = tracer_.Span("fixed_point");
      MASS_RETURN_IF_ERROR(IterateSharded(warm));
    } else {
      sharded_valid_ = false;
      auto span = tracer_.Span("fixed_point");
      IterateCompiled(warm);
    }
  } else {
    matrix_valid_ = false;
    sharded_valid_ = false;
    auto span = tracer_.Span("fixed_point");
    SolveInfluenceReference(warm);
  }
  solve_trace_.solve_seconds = sw.ElapsedSeconds();
  solve_iterations_total_.Increment(
      static_cast<uint64_t>(solve_trace_.iterations));
  if (warm) {
    // How many iterations the warm start saved vs the last cold solve —
    // an approximation (the corpus grew), but exactly the signal that
    // tells an operator warm starting is paying off.
    warm_saved_gauge_.Set(static_cast<double>(
        std::max(0, last_full_solve_iterations_ - solve_trace_.iterations)));
  } else {
    last_full_solve_iterations_ = solve_trace_.iterations;
    warm_saved_gauge_.Set(0.0);
  }
  return Status::OK();
}

// The compiled path: Eq. 3's loop-invariant comment factors are folded
// into a blogger-level CSR matrix once, and each fixed-point iteration is
// the SpMV  ap = q + M·x  followed by the Eq. 1 blend, normalization, and
// damping. Inf(b_i, d_k) is reconstructed with one per-post pass after
// convergence, from the same iterate the reference solver would have used.
void MassEngine::IterateCompiled(bool warm) {
  const size_t nb = corpus_->num_bloggers();
  const size_t np = corpus_->num_posts();
  const double alpha = options_.alpha;
  ThreadPool* pool = SolverPool();
  const SolverMatrix& matrix = matrix_;
  // kSpmv: one draw per solve; when it fires every iteration's SpMV is
  // slowed by the plan's delay, stretching write-path latency (and thus
  // snapshot age) without failing anything.
  const EngineFaultPlan* fp = options_.fault_plan;
  int64_t spmv_fault_micros = 0;
  if (fp != nullptr && DrawEngineFault(*fp, EngineFaultSite::kSpmv,
                                       fault_spmv_ops_++,
                                       fp->spmv_slow_rate)) {
    fault_spmv_slowdowns_.Increment();
    spmv_fault_micros = fp->spmv_slow_micros;
  }
  solve_trace_.solver_path = "csr";
  solve_trace_.warm_start = warm;
  solve_trace_.residuals.clear();
  solve_trace_.residuals.reserve(
      static_cast<size_t>(std::max(0, options_.max_iterations)));

  post_influence_.assign(np, 0.0);

  if (warm) {
    // Resume from the previous fixed point; bloggers the delta introduced
    // start at the normalized mean. One SpMV re-derives ap from there.
    influence_.resize(nb, 1.0);
    ap_.resize(nb, 0.0);
  } else {
    // Initial iterate: quality-only posts, Eq. 1 with CommentScore = 0 —
    // i.e. ap = q.
    ap_ = matrix.quality;
    influence_.assign(nb, 0.0);
    for (size_t b = 0; b < nb; ++b) {
      influence_[b] = alpha * ap_[b] + (1.0 - alpha) * gl_[b];
    }
    MeanNormalize(&influence_);
  }

  // With the citation facet off every commenter counts 1, so the SpMV
  // input is a constant ones vector (the WSDM'08 style count model).
  std::vector<double> ones;
  if (!options_.use_citation) ones.assign(nb, 1.0);

  std::vector<double> next(nb, 0.0);
  std::vector<double> last_x;  // iterate that produced the final ap
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const std::vector<double>& x = options_.use_citation ? influence_ : ones;
    last_x = x;
    // Eq. 3 + Eq. 4 accumulated per author, all at once.
    SolverSpMV(matrix, x, &ap_, pool);
    if (spmv_fault_micros > 0) EngineFaultSleep(*fp, spmv_fault_micros);
    // Eq. 1.
    for (size_t b = 0; b < nb; ++b) {
      next[b] = alpha * ap_[b] + (1.0 - alpha) * gl_[b];
    }
    MeanNormalize(&next);
    if (options_.damping > 0.0) {
      for (size_t b = 0; b < nb; ++b) {
        next[b] = (1.0 - options_.damping) * next[b] +
                  options_.damping * influence_[b];
      }
    }
    // Max-reduction is order independent, so the parallel fold is exact.
    const double delta = ParallelReduce(
        pool, nb, 0.0,
        [&](size_t begin, size_t end) {
          double m = 0.0;
          for (size_t b = begin; b < end; ++b) {
            m = std::max(m, std::abs(next[b] - influence_[b]));
          }
          return m;
        },
        [](double a, double b) { return std::max(a, b); });
    influence_.swap(next);
    solve_trace_.iterations = iter + 1;
    solve_trace_.final_residual = delta;
    solve_trace_.residuals.push_back({iter + 1, delta, options_.damping});
    if (delta < options_.tolerance) {
      solve_trace_.converged = true;
      break;
    }
  }

  ReconstructPostInfluence(last_x);
}

// Final per-post pass shared by the compiled and sharded paths:
// Inf(b_i, d_k) under the iterate that fed the last SpMV (matching the
// reference solver, which writes post_influence_ before the iterate is
// updated). Streams the global matrix's post-grouped mirror — no corpus
// records touched, and no per-shard state needed: the sharded solve keeps
// the global matrix_ alive precisely so this mirror stays usable. Skipped
// when no iteration ran (last_x empty).
void MassEngine::ReconstructPostInfluence(const std::vector<double>& last_x) {
  if (last_x.empty()) return;
  const size_t np = corpus_->num_posts();
  const double beta = options_.beta;
  const SolverMatrix& matrix = matrix_;
  ThreadPool* pool = SolverPool();
  const double* x = last_x.data();
  ParallelFor(pool, np, [&, x](size_t begin, size_t end) {
    for (size_t p = begin; p < end; ++p) {
      double comment_score = 0.0;
      for (size_t k = matrix.post_offsets[p]; k < matrix.post_offsets[p + 1];
           ++k) {
        comment_score += x[matrix.post_commenter[k]] * matrix.post_weight[k];
      }
      post_influence_[p] = beta * post_quality_[p] * post_recency_[p] +
                           (1.0 - beta) * comment_score;
    }
  });
}

bool MassEngine::UseShardedSolve() const {
  return options_.use_compiled_solver && options_.num_shards > 1;
}

// Splits the already-compiled global CSR system by blogger row and ships
// each worker its slice through the shard runtime. The global matrix_
// stays live: ExtendSolverMatrix keeps extending it on ingest, and
// ReconstructPostInfluence reads its post-grouped mirror.
Status MassEngine::BuildShardedSystem() {
  shard::ShardingSpec spec;
  spec.num_shards = options_.num_shards;
  spec.key = options_.shard_key;
  shard_plan_ = shard::BuildShardPlan(corpus_->num_bloggers(), spec);
  sharded_matrix_ =
      shard::PartitionSolverMatrix(matrix_, shard_plan_, SolverPool());
  // Not valid until the fleet holds the slices: a failed load must not
  // leave the composite-snapshot publish path pointed at stale shards.
  sharded_valid_ = false;
  MASS_RETURN_IF_ERROR(EnsureShardRuntime());
  MASS_RETURN_IF_ERROR(shard_runtime_->LoadSlices(sharded_matrix_));
  sharded_valid_ = true;
  shard_count_gauge_.Set(static_cast<double>(sharded_matrix_.num_shards()));
  shard_halo_gauge_.Set(static_cast<double>(sharded_matrix_.halo_entries()));
  return Status::OK();
}

Status MassEngine::EnsureShardRuntime() {
  if (shard_runtime_ != nullptr) return Status::OK();
  shard::ShardCoordinatorOptions ro;
  ro.transport = options_.shard_transport;
  ro.message_deadline_micros = options_.shard_message_deadline_micros;
  ro.retry = options_.shard_retry;
  ro.metrics = metrics_;
  // Installed whenever a plan is armed (not only when a transport rate is
  // already nonzero): the hook re-reads the live plan on every draw, so a
  // test can arm rates between solves without retuning — the same
  // mutate-the-plan-in-place idiom the other fault sites support.
  if (options_.fault_plan != nullptr) {
    ro.fault_hook = MakeTransportFaultHook();
  }
  shard_runtime_ = std::make_unique<shard::ShardCoordinator>(std::move(ro));
  return Status::OK();
}

shard::TransportFaultHook MassEngine::MakeTransportFaultHook() {
  // The hook runs on the engine's write thread (the coordinator sends
  // inline), so touching the op-free fault counter is safe. Draws are pure
  // functions of (seed, kTransport, op*4 + sub-fault) — four disjoint
  // deterministic streams per message, same replayability as every other
  // site.
  const EngineFaultPlan* fp = options_.fault_plan;
  return [this, fp](uint64_t op) {
    shard::TransportFaultDecision d;
    if (DrawEngineFault(*fp, EngineFaultSite::kTransport, op * 4 + 0,
                        fp->transport_drop_rate)) {
      d.drop = true;
    } else if (DrawEngineFault(*fp, EngineFaultSite::kTransport, op * 4 + 1,
                               fp->transport_truncate_rate)) {
      d.truncate = true;
    } else if (DrawEngineFault(*fp, EngineFaultSite::kTransport, op * 4 + 2,
                               fp->transport_kill_rate)) {
      d.kill_worker = true;
    } else if (DrawEngineFault(*fp, EngineFaultSite::kTransport, op * 4 + 3,
                               fp->transport_delay_rate)) {
      fault_transport_faults_.Increment();
      EngineFaultSleep(*fp, fp->transport_delay_micros);
      return d;
    }
    if (d.drop || d.truncate || d.kill_worker) {
      fault_transport_faults_.Increment();
    }
    return d;
  };
}

// The sharded fixed point: identical arithmetic to IterateCompiled, but
// each round's SpMV fans out to K ShardWorkers over the configured
// transport (in-process queues or forked pipe workers). The coordinator
// keeps blend, normalization, damping, and the residual global, and the
// worker kernels sum rows serially over a monotone column remap, so every
// iterate — and therefore the converged influence, ap, and post_influence
// surfaces — is BYTE-IDENTICAL to the single-matrix solve for any shard
// count and either transport (shard_test and runtime_test assert this
// across the 16 facet ablations). A worker that dies or misses its
// deadline surfaces here as a typed Status; the caller skips the publish
// and the previous snapshot keeps serving.
Status MassEngine::IterateSharded(bool warm) {
  const size_t np = corpus_->num_posts();
  // Same kSpmv site as IterateCompiled: the slowdown models one shard's
  // kernel lagging, which in the sharded round structure delays the whole
  // round (the exchange is a barrier). The stall runs once per round via
  // the coordinator's round hook.
  const EngineFaultPlan* fp = options_.fault_plan;
  int64_t spmv_fault_micros = 0;
  if (fp != nullptr && DrawEngineFault(*fp, EngineFaultSite::kSpmv,
                                       fault_spmv_ops_++,
                                       fp->spmv_slow_rate)) {
    fault_spmv_slowdowns_.Increment();
    spmv_fault_micros = fp->spmv_slow_micros;
  }
  solve_trace_.solver_path = "csr-sharded";
  solve_trace_.warm_start = warm;
  solve_trace_.residuals.clear();
  solve_trace_.residuals.reserve(
      static_cast<size_t>(std::max(0, options_.max_iterations)));

  post_influence_.assign(np, 0.0);

  shard::FixedPointParams params;
  params.alpha = options_.alpha;
  params.damping = options_.damping;
  params.tolerance = options_.tolerance;
  params.max_iterations = options_.max_iterations;
  params.use_citation = options_.use_citation;
  params.warm = warm;
  params.gl = &gl_;
  params.quality = &matrix_.quality;
  params.pool = SolverPool();
  if (spmv_fault_micros > 0) {
    params.round_stall = [fp, spmv_fault_micros] {
      EngineFaultSleep(*fp, spmv_fault_micros);
    };
  }

  shard::FixedPointResult res;
  MASS_RETURN_IF_ERROR(
      shard_runtime_->SolveFixedPoint(params, &influence_, &ap_, &res));

  for (const shard::FixedPointRoundTrace& t : res.residuals) {
    solve_trace_.residuals.push_back(
        {t.iteration, t.residual, options_.damping});
  }
  solve_trace_.iterations = res.iterations;
  solve_trace_.final_residual = res.final_residual;
  solve_trace_.converged = res.converged;

  // One exchange record per round and one spmv record per shard per solve
  // — the same observability shape as the in-process sharded loop, with
  // the exchange now measuring the gather/serialize/transport share of
  // each round (round wall time minus the slowest worker's kernel).
  for (uint64_t e : res.round_exchange_us) shard_exchange_us_.Record(e);
  for (size_t s = 0; s < res.spmv_us.size(); ++s) {
    tracer_.Record(StrFormat("shard%zu_spmv", s),
                   static_cast<int64_t>(res.spmv_us[s]));
    shard_spmv_us_.Record(res.spmv_us[s]);
  }
  tracer_.Record("shard_boundary_exchange",
                 static_cast<int64_t>(res.exchange_us_total));

  ReconstructPostInfluence(res.last_x);
  return Status::OK();
}

void MassEngine::SolveInfluenceReference(bool warm) {
  const size_t nb = corpus_->num_bloggers();
  const size_t np = corpus_->num_posts();
  const double alpha = options_.alpha;
  const double beta = options_.beta;
  solve_trace_.solver_path = "scalar";
  solve_trace_.warm_start = warm;
  solve_trace_.residuals.clear();
  solve_trace_.residuals.reserve(
      static_cast<size_t>(std::max(0, options_.max_iterations)));

  post_influence_.assign(np, 0.0);
  ap_.assign(nb, 0.0);

  if (warm) {
    // Resume from the previous fixed point (new bloggers join at the
    // normalized mean); ap is rebuilt inside the first iteration.
    influence_.resize(nb, 1.0);
  } else {
    // Initial iterate: quality-only posts, Eq. 1 with CommentScore = 0.
    influence_.assign(nb, 0.0);
    for (const Post& p : corpus_->posts()) {
      ap_[p.author] += beta * post_quality_[p.id] * post_recency_[p.id];
    }
    for (size_t b = 0; b < nb; ++b) {
      influence_[b] = alpha * ap_[b] + (1.0 - alpha) * gl_[b];
    }
    MeanNormalize(&influence_);
  }

  // 1/TC per blogger, with the same no-comments fallback the compiled
  // path folds into the matrix (solver_matrix.cc) — keeping the two
  // solvers' per-comment arithmetic identical: multiply by a reciprocal
  // computed once per blogger, never a per-comment divide. TC is the
  // window-effective count, again matching the compiled path.
  std::vector<double> inv_tc(nb, 1.0);
  if (options_.use_tc_normalization) {
    const std::vector<size_t> eff_tc =
        EffectiveTcCounts(*corpus_, comment_recency_);
    for (size_t b = 0; b < nb; ++b) {
      double tc = static_cast<double>(eff_tc[b]);
      inv_tc[b] = tc > 0.0 ? 1.0 / tc : 1.0;
    }
  }

  std::vector<double> next(nb, 0.0);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    std::fill(ap_.begin(), ap_.end(), 0.0);
    for (const Post& p : corpus_->posts()) {
      // Eq. 3: CommentScore = sum_j Inf(b_j) * SF / TC(b_j).
      double comment_score = 0.0;
      for (CommentId cid : corpus_->CommentsOn(p.id)) {
        const Comment& c = corpus_->comment(cid);
        double commenter_inf =
            options_.use_citation ? influence_[c.commenter] : 1.0;
        double sf = comment_sf_[cid];
        comment_score +=
            commenter_inf * sf * comment_recency_[cid] * inv_tc[c.commenter];
      }
      // Eq. 4 (with the optional recency extension on the quality term).
      double inf_post =
          beta * post_quality_[p.id] * post_recency_[p.id] +
          (1.0 - beta) * comment_score;
      post_influence_[p.id] = inf_post;
      ap_[p.author] += inf_post;
    }
    // Eq. 1.
    for (size_t b = 0; b < nb; ++b) {
      next[b] = alpha * ap_[b] + (1.0 - alpha) * gl_[b];
    }
    MeanNormalize(&next);
    if (options_.damping > 0.0) {
      for (size_t b = 0; b < nb; ++b) {
        next[b] = (1.0 - options_.damping) * next[b] +
                  options_.damping * influence_[b];
      }
    }
    double delta = 0.0;
    for (size_t b = 0; b < nb; ++b) {
      delta = std::max(delta, std::abs(next[b] - influence_[b]));
    }
    influence_.swap(next);
    solve_trace_.iterations = iter + 1;
    solve_trace_.final_residual = delta;
    solve_trace_.residuals.push_back({iter + 1, delta, options_.damping});
    if (delta < options_.tolerance) {
      solve_trace_.converged = true;
      break;
    }
  }
}

Status MassEngine::Analyze(const InterestMiner* miner, size_t num_domains) {
  if (!corpus_->indexes_built()) {
    return Status::FailedPrecondition("corpus indexes not built");
  }
  if (num_domains == 0) {
    return Status::InvalidArgument("num_domains must be positive");
  }
  if (options_.alpha < 0.0 || options_.alpha > 1.0) {
    return Status::InvalidArgument("alpha must lie in [0, 1]");
  }
  if (options_.beta < 0.0 || options_.beta > 1.0) {
    return Status::InvalidArgument("beta must lie in [0, 1]");
  }
  // An empty corpus is not an error: every stage degenerates to empty
  // vectors and every ranking to an empty list. A delta stream starts
  // exactly this way — Analyze() over nothing, then IngestDelta batches.
  num_domains_ = num_domains;

  tracer_.BeginRun("analyze");
  analyze_runs_.Increment();
  solve_trace_ = obs::SolveTrace();
  {
    auto span = tracer_.Span("general_links");
    MASS_RETURN_IF_ERROR(ComputeGeneralLinks());
  }
  // Recency precedes quality: the windowed quality mean is taken over the
  // posts the window keeps (post_recency_ > 0).
  {
    auto span = tracer_.Span("recency");
    ComputeRecency();
  }
  {
    auto span = tracer_.Span("quality");
    ComputeQuality();
  }
  {
    auto span = tracer_.Span("sentiment");
    ComputeSentiment();
  }
  {
    auto span = tracer_.Span("interests");
    MASS_RETURN_IF_ERROR(ComputeInterests(miner));
  }
  MASS_RETURN_IF_ERROR(SolveInfluence());
  {
    auto span = tracer_.Span("domain_vectors");
    ComputeDomainVectors();
  }
  RecordSolvedShape();
  PublishSnapshot("analyze");

  analyzed_ = true;
  return Status::OK();
}

void MassEngine::RecordSolvedShape() {
  solved_bloggers_ = corpus_->num_bloggers();
  solved_posts_ = corpus_->num_posts();
  solved_comments_ = corpus_->num_comments();
  solved_links_ = corpus_->num_links();
}

bool MassEngine::SolvedShapeCurrent() const {
  return solved_bloggers_ == corpus_->num_bloggers() &&
         solved_posts_ == corpus_->num_posts() &&
         solved_comments_ == corpus_->num_comments() &&
         solved_links_ == corpus_->num_links();
}

void MassEngine::ComputeDomainVectors() {
  // Eq. 5: Inf(b_i, C_t) = sum_k Inf(b_i, d_k) * iv(b_i, d_k, C_t).
  domain_influence_.assign(corpus_->num_bloggers(),
                           std::vector<double>(num_domains_, 0.0));
  for (const Post& p : corpus_->posts()) {
    const std::vector<double>& iv = post_interests_[p.id];
    double inf_post = post_influence_[p.id];
    auto& vec = domain_influence_[p.author];
    for (size_t t = 0; t < num_domains_; ++t) vec[t] += inf_post * iv[t];
  }
}

Status MassEngine::Retune(const EngineOptions& options) {
  if (!analyzed_) {
    return Status::FailedPrecondition("Retune requires a prior Analyze");
  }
  if (!SolvedShapeCurrent()) {
    // The corpus grew (or was mutated) behind the engine's back; the
    // cached text stages and interest vectors are sized for the old
    // corpus and would index out of range — or worse, silently produce
    // stale scores. Mutations must flow through IngestDelta() or a fresh
    // Analyze().
    return Status::FailedPrecondition(
        "corpus changed since the last solve; use IngestDelta() or "
        "re-run Analyze()");
  }
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must lie in [0, 1]");
  }
  if (options.beta < 0.0 || options.beta > 1.0) {
    return Status::InvalidArgument("beta must lie in [0, 1]");
  }
  options_ = options;
  // A Retune may hand over a different registry; re-resolve the handles so
  // subsequent counts land in the right place.
  InitObservability();
  tracer_.BeginRun("retune");
  retune_runs_.Increment();
  solve_trace_ = obs::SolveTrace();
  // Interest vectors (post_interests_) are corpus-derived and kept; the
  // cached text-analysis results make every stage below cheap.
  {
    auto span = tracer_.Span("general_links");
    MASS_RETURN_IF_ERROR(ComputeGeneralLinks());
  }
  {
    auto span = tracer_.Span("recency");
    ComputeRecency();
  }
  {
    auto span = tracer_.Span("quality");
    ComputeQuality();
  }
  {
    auto span = tracer_.Span("sentiment");
    ComputeSentiment();
  }
  MASS_RETURN_IF_ERROR(SolveInfluence());
  {
    auto span = tracer_.Span("domain_vectors");
    ComputeDomainVectors();
  }
  PublishSnapshot("retune");
  return Status::OK();
}

Status MassEngine::IngestDelta(const CorpusDelta& delta,
                               const InterestMiner* miner) {
  return IngestDelta(delta, miner, nullptr);
}

Status MassEngine::IngestDelta(const CorpusDelta& delta,
                               const InterestMiner* miner,
                               MutationResult* result) {
  MutationResult local;
  local.op = "ingest";
  if (result != nullptr) *result = local;
  if (mutable_corpus_ == nullptr) {
    return Status::FailedPrecondition(
        "IngestDelta requires the mutable-corpus constructor");
  }
  if (!analyzed_) {
    return Status::FailedPrecondition("IngestDelta requires a prior Analyze");
  }
  if (!SolvedShapeCurrent()) {
    return Status::FailedPrecondition(
        "corpus changed since the last solve; re-run Analyze() before "
        "ingesting deltas");
  }
  // Validate everything fallible BEFORE mutating the corpus, so a failed
  // ingest never leaves the engine half-updated.
  if (miner != nullptr) {
    if (miner->num_domains() != num_domains_) {
      return Status::FailedPrecondition(
          "miner domain count does not match num_domains");
    }
  } else {
    for (const Post& p : delta.additions.posts()) {
      if (p.true_domain < 0 ||
          static_cast<size_t>(p.true_domain) >= num_domains_) {
        return Status::FailedPrecondition(
            "no miner given and a delta post lacks a usable ground-truth "
            "domain");
      }
    }
  }

  // ApplyCorpusDelta self-rolls-back on failure, so a rejected fragment
  // (bad ids, corrupt file) never mutates the corpus.
  MASS_ASSIGN_OR_RETURN(AppliedDelta applied,
                        ApplyCorpusDelta(mutable_corpus_, delta));
  const size_t nnz_before = matrix_valid_ ? matrix_.nnz() : 0;
  if (!applied.changed()) {
    // Pure-duplicate batch: nothing moved, the prior snapshot is current.
    local.matrix_nnz = nnz_before;
    if (result != nullptr) *result = local;
    RecordMutationMetrics(local);
    return Status::OK();
  }
  local.added_bloggers = applied.added_bloggers;
  local.added_posts = applied.added_posts;
  local.added_comments = applied.added_comments;
  local.added_links = applied.added_links;

  // Delta-size accounting before the pipeline runs, so even a rolled-back
  // ingest leaves a record of what arrived.
  metrics_->GetCounter("engine.ingest_added_bloggers_total")
      .Increment(applied.added_bloggers);
  metrics_->GetCounter("engine.ingest_added_posts_total")
      .Increment(applied.added_posts);
  metrics_->GetCounter("engine.ingest_added_comments_total")
      .Increment(applied.added_comments);
  metrics_->GetCounter("engine.ingest_added_links_total")
      .Increment(applied.added_links);

  Status ingested;
  if (!options_.transactional_ingest) {
    ingested = IngestAppliedDelta(applied, miner);
  } else {
    // Transactional path: the corpus already holds the delta (application
    // alone moves no score), so snapshot the engine now and undo both
    // sides if any pipeline stage fails.
    IngestSnapshot snapshot = CaptureIngestSnapshot();
    ingested = IngestAppliedDelta(applied, miner);
    if (!ingested.ok()) {
      MASS_RETURN_IF_ERROR(
          mutable_corpus_->RollbackTo(applied.mark(), applied.enriched_prior));
      RestoreIngestSnapshot(std::move(snapshot));
      ingest_rollbacks_.Increment();
      local.rolled_back = true;
    }
  }
  local.matrix_nnz = matrix_valid_ ? matrix_.nnz() : 0;
  local.matrix_nnz_delta = static_cast<int64_t>(local.matrix_nnz) -
                           static_cast<int64_t>(nnz_before);
  if (ingested.ok()) {
    local.applied = true;
    local.warm_start_iterations =
        options_.warm_start_ingest ? solve_trace_.iterations : 0;
  }
  if (result != nullptr) *result = local;
  RecordMutationMetrics(local);
  return ingested;
}

Status MassEngine::IngestAppliedDelta(const AppliedDelta& applied,
                                      const InterestMiner* miner) {
  tracer_.BeginRun("ingest");
  ingest_runs_.Increment();
  solve_trace_ = obs::SolveTrace();
  // GL: the shape key inside ComputeGeneralLinks() reruns link analysis
  // exactly when the delta changed the graph (new bloggers or links);
  // post/comment-only deltas keep the cached vector.
  {
    auto span = tracer_.Span("general_links");
    MASS_RETURN_IF_ERROR(ComputeGeneralLinks());
  }
  // Text stages run over the delta only; the option-dependent derivations
  // (quality normalization, SF mapping, recency) are O(corpus) array
  // passes over the extended caches.
  {
    auto span = tracer_.Span("extend_text_caches");
    ExtendTextCaches(applied.prior_posts, applied.prior_comments);
  }
  {
    auto span = tracer_.Span("recency");
    ComputeRecency();
  }
  {
    auto span = tracer_.Span("quality");
    ComputeQuality();
  }
  {
    auto span = tracer_.Span("sentiment");
    ComputeSentiment();
  }
  if (const EngineFaultPlan* fp = options_.fault_plan) {
    // kIngestPipeline: fail here, after the text caches, quality, recency,
    // and sentiment surfaces have already been extended for the delta but
    // before the solve — the worst spot for a real mid-pipeline error, so
    // the transactional rollback has genuinely partial state to undo.
    if (DrawEngineFault(*fp, EngineFaultSite::kIngestPipeline,
                        fault_ingest_ops_++, fp->ingest_failure_rate)) {
      fault_ingest_failures_.Increment();
      return Status::Internal(StrFormat(
          "injected ingest-pipeline fault (op %llu)",
          static_cast<unsigned long long>(fault_ingest_ops_ - 1)));
    }
  }
  {
    auto span = tracer_.Span("interests");
    MASS_RETURN_IF_ERROR(ExtendInterests(miner, applied.prior_posts));
  }
  MASS_RETURN_IF_ERROR(SolveInfluenceIncremental());
  {
    auto span = tracer_.Span("domain_vectors");
    ComputeDomainVectors();
  }
  RecordSolvedShape();
  // Publish is the LAST step, after every surface is solved: readers see
  // either the complete pre-delta snapshot or the complete post-delta one,
  // never a partial state. On any earlier failure the transactional
  // wrapper rolls back without this call having run, so the previously
  // published snapshot simply remains current.
  PublishSnapshot("ingest");
  return Status::OK();
}

bool MassEngine::WeightsAnchorStable() const {
  if (options_.window.as_of > 0) return true;  // pinned anchor
  return options_.recency_half_life_days <= 0.0 && !options_.window.enabled();
}

void MassEngine::RecordMutationMetrics(const MutationResult& result) {
  mutation_added_posts_.Increment(result.added_posts);
  mutation_added_comments_.Increment(result.added_comments);
  mutation_removed_posts_.Increment(result.removed_posts);
  mutation_removed_comments_.Increment(result.removed_comments);
  mutation_matrix_nnz_.Set(static_cast<double>(result.matrix_nnz));
  mutation_nnz_delta_.Set(static_cast<double>(result.matrix_nnz_delta));
  mutation_warm_iterations_.Set(
      static_cast<double>(result.warm_start_iterations));
}

Status MassEngine::ExpireWindow(const WindowSpec& window,
                                MutationResult* result) {
  MutationResult local;
  local.op = "expire";
  if (result != nullptr) *result = local;
  if (mutable_corpus_ == nullptr) {
    return Status::FailedPrecondition(
        "ExpireWindow requires the mutable-corpus constructor");
  }
  if (!analyzed_) {
    return Status::FailedPrecondition("ExpireWindow requires a prior Analyze");
  }
  if (!SolvedShapeCurrent()) {
    return Status::FailedPrecondition(
        "corpus changed since the last solve; re-run Analyze() before "
        "expiring");
  }
  if (window.as_of < 0 || window.horizon_secs < 0) {
    return Status::InvalidArgument("window bounds must be non-negative");
  }

  const size_t nb = corpus_->num_bloggers();
  const size_t np0 = corpus_->num_posts();
  const size_t nc0 = corpus_->num_comments();

  // Removal masks under the window's cutoff, mirroring ComputeRecency's
  // semantics: a post older than (anchor − horizon) ages out, its comments
  // go with it, and a comment ages out on its own timestamp too. Entities
  // newer than an explicit as_of stay — they are outside the window (zero
  // weight) but will re-enter when the window advances past them.
  const int64_t anchor = window.as_of > 0 ? window.as_of : NewestTimestamp();
  const bool has_cutoff = window.horizon_secs > 0;
  const int64_t cutoff = anchor - window.horizon_secs;
  std::vector<uint8_t> drop_post(np0, 0);
  std::vector<uint8_t> drop_comment(nc0, 0);
  size_t removed_posts = 0;
  size_t removed_comments = 0;
  if (has_cutoff) {
    for (const Post& p : corpus_->posts()) {
      if (p.timestamp < cutoff) {
        drop_post[p.id] = 1;
        ++removed_posts;
      }
    }
    for (const Comment& c : corpus_->comments()) {
      if (drop_post[c.post] || c.timestamp < cutoff) {
        drop_comment[c.id] = 1;
        ++removed_comments;
      }
    }
  }

  const size_t nnz_before = matrix_valid_ ? matrix_.nnz() : 0;
  if (removed_posts == 0 && removed_comments == 0 &&
      window == options_.window) {
    // Nothing aged out and the weighting is already this window's: the
    // published snapshot is still exact.
    local.matrix_nnz = nnz_before;
    if (result != nullptr) *result = local;
    RecordMutationMetrics(local);
    return Status::OK();
  }

  expire_runs_.Increment();
  local.removed_posts = removed_posts;
  local.removed_comments = removed_comments;

  // Everything ShrinkSolverMatrix needs from the PRE-expiry state: the
  // 1/TC factors folded into the live values, each comment's current
  // SF·recency weight (to detect survivors the new window re-weights), and
  // the rows that lose comments outright.
  const bool can_shrink = options_.use_compiled_solver && matrix_valid_ &&
                          options_.incremental_matrix;
  ShrinkPlan plan;
  std::vector<double> old_weight;
  if (can_shrink) {
    plan.dirty_row.assign(nb, 0);
    if (options_.use_tc_normalization) {
      const std::vector<size_t> eff_tc =
          EffectiveTcCounts(*corpus_, comment_recency_);
      plan.old_inv_tc.assign(nb, 1.0);
      for (size_t b = 0; b < nb; ++b) {
        const double tc = static_cast<double>(eff_tc[b]);
        plan.old_inv_tc[b] = tc > 0.0 ? 1.0 / tc : 1.0;
      }
    }
    old_weight.resize(nc0);
    for (size_t cid = 0; cid < nc0; ++cid) {
      old_weight[cid] = comment_sf_[cid] * comment_recency_[cid];
      if (drop_comment[cid]) {
        const Comment& c = corpus_->comment(static_cast<CommentId>(cid));
        plan.dirty_row[corpus_->post(c.post).author] = 1;
      }
    }
  }

  const bool transactional = options_.transactional_ingest;
  IngestSnapshot engine_snapshot;
  CorpusEntities entities;
  if (transactional) {
    engine_snapshot = CaptureIngestSnapshot();
    entities = mutable_corpus_->CaptureEntities();
  }
  const WindowSpec old_window = options_.window;
  options_.window = window;

  Status expired =
      ExpireApplied(drop_post, drop_comment, old_weight, can_shrink, &plan);
  if (!expired.ok()) {
    if (transactional) {
      mutable_corpus_->RestoreEntities(std::move(entities));
      RestoreIngestSnapshot(std::move(engine_snapshot));
      options_.window = old_window;
      expire_rollbacks_.Increment();
      local.rolled_back = true;
    }
    local.matrix_nnz = matrix_valid_ ? matrix_.nnz() : 0;
    local.matrix_nnz_delta = static_cast<int64_t>(local.matrix_nnz) -
                             static_cast<int64_t>(nnz_before);
    if (result != nullptr) *result = local;
    RecordMutationMetrics(local);
    return expired;
  }

  local.applied = true;
  local.matrix_nnz = matrix_valid_ ? matrix_.nnz() : 0;
  local.matrix_nnz_delta = static_cast<int64_t>(local.matrix_nnz) -
                           static_cast<int64_t>(nnz_before);
  local.warm_start_iterations =
      options_.warm_start_ingest ? solve_trace_.iterations : 0;
  if (result != nullptr) *result = local;
  RecordMutationMetrics(local);
  return Status::OK();
}

Status MassEngine::ExpireApplied(const std::vector<uint8_t>& drop_post,
                                 const std::vector<uint8_t>& drop_comment,
                                 const std::vector<double>& old_weight,
                                 bool can_shrink, ShrinkPlan* plan) {
  tracer_.BeginRun("expire");
  solve_trace_ = obs::SolveTrace();

  CorpusRemoval removal;
  {
    auto span = tracer_.Span("compact_corpus");
    MASS_ASSIGN_OR_RETURN(
        removal, mutable_corpus_->RemovePostsAndComments(drop_post,
                                                         drop_comment));
  }
  {
    // The text caches and interest vectors compact in step with the
    // corpus; the maps are monotone over survivors, so the forward
    // in-place copy never overwrites an unread slot.
    auto span = tracer_.Span("compact_caches");
    size_t wp = 0;
    for (size_t p = 0; p < removal.post_map.size(); ++p) {
      if (removal.post_map[p] == kInvalidPost) continue;
      if (wp != p) {
        // Guarded: a self-move (no dropped post yet, wp == p) would leave
        // the interest vector empty.
        post_length_raw_[wp] = post_length_raw_[p];
        post_copy_indicators_[wp] = post_copy_indicators_[p];
        post_interests_[wp] = std::move(post_interests_[p]);
      }
      ++wp;
    }
    post_length_raw_.resize(wp);
    post_copy_indicators_.resize(wp);
    post_interests_.resize(wp);
    size_t wc = 0;
    for (size_t c = 0; c < removal.comment_map.size(); ++c) {
      if (removal.comment_map[c] == kInvalidComment) continue;
      if (wc != c) comment_sentiment_[wc] = comment_sentiment_[c];
      ++wc;
    }
    comment_sentiment_.resize(wc);
  }

  {
    auto span = tracer_.Span("general_links");
    MASS_RETURN_IF_ERROR(ComputeGeneralLinks());
  }
  {
    auto span = tracer_.Span("recency");
    ComputeRecency();
  }
  {
    auto span = tracer_.Span("quality");
    ComputeQuality();
  }
  {
    auto span = tracer_.Span("sentiment");
    ComputeSentiment();
  }
  if (const EngineFaultPlan* fp = options_.fault_plan) {
    // Same kIngestPipeline site as ingest, same worst spot: the corpus and
    // every per-entity cache are already compacted and rescored, so the
    // transactional rollback has genuinely partial state to undo.
    if (DrawEngineFault(*fp, EngineFaultSite::kIngestPipeline,
                        fault_ingest_ops_++, fp->ingest_failure_rate)) {
      fault_ingest_failures_.Increment();
      return Status::Internal(StrFormat(
          "injected expire-pipeline fault (op %llu)",
          static_cast<unsigned long long>(fault_ingest_ops_ - 1)));
    }
  }

  if (can_shrink) {
    // Rows whose surviving comments re-weighted under the new window join
    // the dirty set (identical inputs reproduce identical doubles, so a
    // stable comment compares exactly equal and stays clean).
    for (size_t cid = 0; cid < removal.comment_map.size(); ++cid) {
      const CommentId nid = removal.comment_map[cid];
      if (nid == kInvalidComment) continue;
      if (old_weight[cid] != comment_sf_[nid] * comment_recency_[nid]) {
        const Comment& c = corpus_->comment(nid);
        plan->dirty_row[corpus_->post(c.post).author] = 1;
      }
    }
    plan->num_dirty = 0;
    for (uint8_t d : plan->dirty_row) plan->num_dirty += d;
  }

  MASS_RETURN_IF_ERROR(SolveInfluenceExpire(*plan, can_shrink));
  {
    auto span = tracer_.Span("domain_vectors");
    ComputeDomainVectors();
  }
  RecordSolvedShape();
  PublishSnapshot("expire");
  return Status::OK();
}

Status MassEngine::SolveInfluenceExpire(const ShrinkPlan& plan,
                                        bool can_shrink) {
  auto solve_span = tracer_.Span("solve");
  Stopwatch sw;
  const bool warm = options_.warm_start_ingest;
  if (options_.use_compiled_solver) {
    const size_t nb = corpus_->num_bloggers();
    const double dirty_fraction =
        nb > 0 ? static_cast<double>(plan.num_dirty) / static_cast<double>(nb)
               : 1.0;
    if (can_shrink && dirty_fraction <= options_.expire_recompile_fraction) {
      auto span = tracer_.Span("shrink_matrix");
      ShrinkSolverMatrix(&matrix_, *corpus_, options_, post_quality_,
                         post_recency_, comment_sf_, comment_recency_, plan,
                         SolverPool());
    } else {
      auto span = tracer_.Span("compile_matrix");
      matrix_ = CompileSolverMatrix(*corpus_, options_, post_quality_,
                                    post_recency_, comment_sf_,
                                    comment_recency_, SolverPool());
    }
    matrix_valid_ = true;
    if (UseShardedSolve()) {
      {
        auto span = tracer_.Span("partition_shards");
        MASS_RETURN_IF_ERROR(BuildShardedSystem());
      }
      auto span = tracer_.Span("fixed_point");
      MASS_RETURN_IF_ERROR(IterateSharded(warm));
    } else {
      sharded_valid_ = false;
      auto span = tracer_.Span("fixed_point");
      IterateCompiled(warm);
    }
  } else {
    matrix_valid_ = false;
    sharded_valid_ = false;
    auto span = tracer_.Span("fixed_point");
    SolveInfluenceReference(warm);
  }
  solve_trace_.solve_seconds = sw.ElapsedSeconds();
  solve_iterations_total_.Increment(
      static_cast<uint64_t>(solve_trace_.iterations));
  if (warm) {
    warm_saved_gauge_.Set(static_cast<double>(
        std::max(0, last_full_solve_iterations_ - solve_trace_.iterations)));
  } else {
    last_full_solve_iterations_ = solve_trace_.iterations;
    warm_saved_gauge_.Set(0.0);
  }
  return Status::OK();
}

MassEngine::IngestSnapshot MassEngine::CaptureIngestSnapshot() const {
  IngestSnapshot s;
  s.solve_trace = solve_trace_;
  s.last_full_solve_iterations = last_full_solve_iterations_;
  s.solved_bloggers = solved_bloggers_;
  s.solved_posts = solved_posts_;
  s.solved_comments = solved_comments_;
  s.solved_links = solved_links_;
  s.gl_cache_valid = gl_cache_valid_;
  s.gl_cached_method = gl_cached_method_;
  s.gl_cached_pagerank = gl_cached_pagerank_;
  s.gl_cached_iterations = gl_cached_iterations_;
  s.gl_cached_bloggers = gl_cached_bloggers_;
  s.gl_cached_links = gl_cached_links_;
  s.matrix = matrix_;
  s.matrix_valid = matrix_valid_;
  s.shard_plan = shard_plan_;
  s.sharded_matrix = sharded_matrix_;
  s.sharded_valid = sharded_valid_;
  s.gl = gl_;
  s.ap = ap_;
  s.influence = influence_;
  s.post_quality = post_quality_;
  s.post_influence = post_influence_;
  s.post_recency = post_recency_;
  s.comment_recency = comment_recency_;
  s.comment_sf = comment_sf_;
  s.post_length_raw = post_length_raw_;
  s.post_copy_indicators = post_copy_indicators_;
  s.comment_sentiment = comment_sentiment_;
  s.post_interests = post_interests_;
  s.domain_influence = domain_influence_;
  return s;
}

void MassEngine::RestoreIngestSnapshot(IngestSnapshot&& snapshot) {
  solve_trace_ = std::move(snapshot.solve_trace);
  last_full_solve_iterations_ = snapshot.last_full_solve_iterations;
  solved_bloggers_ = snapshot.solved_bloggers;
  solved_posts_ = snapshot.solved_posts;
  solved_comments_ = snapshot.solved_comments;
  solved_links_ = snapshot.solved_links;
  gl_cache_valid_ = snapshot.gl_cache_valid;
  gl_cached_method_ = snapshot.gl_cached_method;
  gl_cached_pagerank_ = snapshot.gl_cached_pagerank;
  gl_cached_iterations_ = snapshot.gl_cached_iterations;
  gl_cached_bloggers_ = snapshot.gl_cached_bloggers;
  gl_cached_links_ = snapshot.gl_cached_links;
  matrix_ = std::move(snapshot.matrix);
  matrix_valid_ = snapshot.matrix_valid;
  shard_plan_ = std::move(snapshot.shard_plan);
  sharded_matrix_ = std::move(snapshot.sharded_matrix);
  sharded_valid_ = snapshot.sharded_valid;
  gl_ = std::move(snapshot.gl);
  ap_ = std::move(snapshot.ap);
  influence_ = std::move(snapshot.influence);
  post_quality_ = std::move(snapshot.post_quality);
  post_influence_ = std::move(snapshot.post_influence);
  post_recency_ = std::move(snapshot.post_recency);
  comment_recency_ = std::move(snapshot.comment_recency);
  comment_sf_ = std::move(snapshot.comment_sf);
  post_length_raw_ = std::move(snapshot.post_length_raw);
  post_copy_indicators_ = std::move(snapshot.post_copy_indicators);
  comment_sentiment_ = std::move(snapshot.comment_sentiment);
  post_interests_ = std::move(snapshot.post_interests);
  domain_influence_ = std::move(snapshot.domain_influence);
}

std::vector<ScoredBlogger> MassEngine::TopKGeneral(size_t k) const {
  Stopwatch sw;
  std::vector<ScoredBlogger> out = TopKByScore(influence_, k);
  topk_queries_.Increment();
  topk_us_.Record(static_cast<uint64_t>(sw.ElapsedSeconds() * 1e6));
  return out;
}

std::vector<ScoredBlogger> MassEngine::TopKDomain(size_t domain,
                                                  size_t k) const {
  Stopwatch sw;
  std::vector<double> scores(corpus_->num_bloggers());
  for (size_t b = 0; b < scores.size(); ++b) {
    scores[b] = domain_influence_[b][domain];
  }
  std::vector<ScoredBlogger> out = TopKByScore(scores, k);
  topk_queries_.Increment();
  topk_us_.Record(static_cast<uint64_t>(sw.ElapsedSeconds() * 1e6));
  return out;
}

std::vector<ScoredBlogger> MassEngine::TopKWeighted(
    const std::vector<double>& weights, size_t k) const {
  Stopwatch sw;
  std::vector<double> scores(corpus_->num_bloggers(), 0.0);
  size_t nd = std::min(weights.size(), num_domains_);
  for (size_t b = 0; b < scores.size(); ++b) {
    double dot = 0.0;
    for (size_t t = 0; t < nd; ++t) {
      dot += domain_influence_[b][t] * weights[t];
    }
    scores[b] = dot;
  }
  std::vector<ScoredBlogger> out = TopKByScore(scores, k);
  topk_queries_.Increment();
  topk_us_.Record(static_cast<uint64_t>(sw.ElapsedSeconds() * 1e6));
  return out;
}

}  // namespace mass
