// The influence fixed point (Eq. 1-4) compiled to blogger-level sparse
// form. Every factor of a comment's contribution except the commenter's
// current influence — SF(c) · recency(c) / TC(commenter) — is loop
// invariant, so it is folded once, during compilation, into a CSR matrix
// M over bloggers:
//
//   M[author][commenter] = (1-β) · Σ w(c)   over that commenter's comments
//                                            on the author's posts,
//   q[author]            = β · Σ quality(p) · recency(p)  over the
//                                            author's posts,
//
// after which one fixed-point iteration of the reference solver's
// post/comment double loop collapses to the SpMV  ap = q + M·x  — a
// memory-bandwidth-bound kernel that parallelizes over row ranges.
// Compilation itself reads only the corpus indexes and the engine's
// derived per-entity arrays; it never touches Post/Comment records, whose
// inline strings make traversals cache-hostile (that cost is exactly what
// the reference path pays on every iteration).
#pragma once

#include <cstddef>
#include <vector>

#include "core/engine_options.h"
#include "model/corpus.h"

namespace mass {

class ThreadPool;

/// Rescales v so its mean is 1 (influence is a ranking signal; like
/// PageRank it is scale-free, and a fixed scale keeps AP and GL
/// commensurate across iterations). An all-zero vector — possible at the
/// degenerate corner alpha = 1, beta = 0, where nothing seeds the comment
/// recursion — becomes uniform, which both restarts the iteration and is
/// the correct "no information" answer.
///
/// Inline and shared between the engine's solvers and the shard
/// coordinator so every path normalizes with the exact same arithmetic —
/// part of the sharded solve's bit-identity contract.
inline void MeanNormalize(std::vector<double>* v) {
  double sum = 0.0;
  for (double x : *v) sum += x;
  if (v->empty()) return;
  if (sum <= 0.0) {
    for (double& x : *v) x = 1.0;
    return;
  }
  double scale = static_cast<double>(v->size()) / sum;
  for (double& x : *v) x *= scale;
}

/// The compiled form of one (corpus, options) pair. Invalidated by any
/// change to β, the SF mapping, recency, or the TC toggle — the engine
/// recompiles per solve, which is one O(posts + comments) pass.
struct SolverMatrix {
  size_t num_bloggers = 0;

  // CSR over bloggers: row = post author, columns sorted ascending and
  // unique within a row (comments by the same commenter on the same
  // author's posts are pre-summed).
  std::vector<size_t> row_offsets;  ///< [num_bloggers + 1]
  std::vector<BloggerId> cols;      ///< [nnz] commenter ids
  std::vector<double> values;       ///< [nnz] (1-β) · Σ w(c)

  /// q(b): the constant quality part of AP(b), β · Σ quality·recency.
  std::vector<double> quality;      ///< [num_bloggers]

  // Post-grouped flat mirror of each comment's (commenter, w(c)), used by
  // the final per-post reconstruction of Inf(b_i, d_k): post p's comments
  // occupy [post_offsets[p], post_offsets[p+1]).
  std::vector<size_t> post_offsets;       ///< [num_posts + 1]
  std::vector<BloggerId> post_commenter;  ///< [num_comments]
  std::vector<double> post_weight;        ///< [num_comments] w(c), unscaled

  size_t nnz() const { return cols.size(); }
};

/// TC(b) under the current temporal weighting: the number of b's comments
/// whose window/decay weight is nonzero. A comment outside the window
/// contributes nothing to any CommentScore, so counting it in TC would
/// dilute the commenter's surviving comments — and a cold solve on the
/// expired corpus (where the comment is gone) would disagree with the
/// windowed warm path. With no window every weight is positive and this
/// equals Corpus::TotalComments, the paper's TC. Every TC consumer
/// (compile, extend, shrink, the reference solver) goes through here so
/// warm and cold solves normalize identically.
std::vector<size_t> EffectiveTcCounts(const Corpus& corpus,
                                      const std::vector<double>& comment_recency);

/// Folds the loop-invariant comment factors and per-post quality terms of
/// the current options into CSR form. The per-entity inputs are the
/// engine's already-derived arrays (indexed by PostId / CommentId).
/// Columns come out sorted without any sort: the fill walks commenters in
/// ascending id order. `pool` parallelizes the per-post passes (nullptr =
/// inline); the result is identical either way.
SolverMatrix CompileSolverMatrix(const Corpus& corpus,
                                 const EngineOptions& options,
                                 const std::vector<double>& post_quality,
                                 const std::vector<double>& post_recency,
                                 const std::vector<double>& comment_sf,
                                 const std::vector<double>& comment_recency,
                                 ThreadPool* pool);

/// Extends a compiled matrix in place after new bloggers/posts/comments
/// were appended to the corpus (MassEngine::IngestDelta), instead of
/// recompiling: O(prior nnz + delta) versus O(corpus). The prior corpus
/// shape is recovered from the matrix itself (num_bloggers, post_offsets,
/// post_weight). Three effects are applied:
///   1. columns whose commenter's TC changed are rescaled by the 1/TC
///      ratio (a new comment renormalizes ALL of its author's entries),
///   2. the delta's comment weights are spliced into the sorted rows
///      (merging duplicate columns) and rows are appended for new
///      bloggers, preserving the sorted-unique column invariant,
///   3. q and the post-grouped mirror are rebuilt against the (possibly
///      shifted) quality normalization.
/// Caller contract: same options as the original compile, and a stable
/// weighting anchor — corpus-relative decay or a corpus-relative window
/// moves the newest timestamp on every delta, re-decaying every existing
/// weight (the engine falls back to a full recompile in that case; an
/// explicit window.as_of keeps the anchor pinned and the extend valid).
/// Matches CompileSolverMatrix on the merged corpus to ~1e-15 per entry
/// (identical structure; rescaled values can differ in the last ulps).
void ExtendSolverMatrix(SolverMatrix* m, const Corpus& corpus,
                        const EngineOptions& options,
                        const std::vector<double>& post_quality,
                        const std::vector<double>& post_recency,
                        const std::vector<double>& comment_sf,
                        const std::vector<double>& comment_recency,
                        ThreadPool* pool);

/// Inputs to ShrinkSolverMatrix that only the pre-expiry state can
/// provide; MassEngine::ExpireWindow assembles it before compacting the
/// corpus.
struct ShrinkPlan {
  /// The 1/TC factors folded into the matrix's current values (the
  /// effective counts at the last solve), indexed by blogger. Empty when
  /// TC normalization is off.
  std::vector<double> old_inv_tc;
  /// Rows to rebuild from the compacted corpus: authors whose posts lost
  /// a comment, or one of whose surviving comments changed weight (the
  /// window edge moved across it). Empty = no rows dirty.
  std::vector<uint8_t> dirty_row;
  size_t num_dirty = 0;
};

/// Shrinks a compiled matrix in place after posts/comments were removed
/// from the corpus (MassEngine::ExpireWindow), mirroring
/// ExtendSolverMatrix: O(surviving nnz + dirty rows) versus O(corpus).
/// Clean rows are copied with a per-column 1/TC-ratio rescale (a removed
/// comment renormalizes ALL of its author's surviving entries); dirty rows
/// are rebuilt from the compacted corpus with the compile's exact
/// summation order, so they come out bit-identical to a fresh compile. q
/// and the post-grouped mirror are rebuilt whole (post ids shifted by the
/// compaction; quality normalization moved with the windowed mean).
/// Caller contract: the corpus is already compacted, the per-entity arrays
/// are the post-expiry ones, options match the original compile, and the
/// blogger set is unchanged — expiry never removes bloggers.
void ShrinkSolverMatrix(SolverMatrix* m, const Corpus& corpus,
                        const EngineOptions& options,
                        const std::vector<double>& post_quality,
                        const std::vector<double>& post_recency,
                        const std::vector<double>& comment_sf,
                        const std::vector<double>& comment_recency,
                        const ShrinkPlan& plan, ThreadPool* pool);

/// y = m.quality + M·x, parallel over row ranges. Each row is summed
/// serially in column order, so the result is bit-identical for every
/// thread count. `y` is resized to num_bloggers.
void SolverSpMV(const SolverMatrix& m, const std::vector<double>& x,
                std::vector<double>* y, ThreadPool* pool);

}  // namespace mass
