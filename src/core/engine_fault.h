// EngineFaultPlan: deterministic fault injection for the engine write
// path, generalizing the crawler-only FaultPlan of crawler/fault_injection
// to the analyzer itself. A plan makes every rollback and recovery path
// reachable on demand:
//
//   - kIngestPipeline: fail IngestDelta mid-pipeline (after the delta has
//     been applied and partially scored), exercising the transactional
//     rollback + snapshot-republish path;
//   - kPoisonDelta: corrupt a CorpusDelta before ingest so the engine's
//     validation rejects it cleanly (the "garbage from the crawl" path);
//   - kPublish: stall a snapshot publish, inflating snapshot age so the
//     serving staleness contract (QueryServiceOptions::max_staleness) is
//     observable under test;
//   - kSpmv: slow the solver's SpMV, inflating write-path latency without
//     failing it;
//   - kTransport: drop, truncate, delay, or kill-the-worker on the sharded
//     solve's coordinator→worker messages, exercising the shard runtime's
//     deadline/retry machinery and the worker-death degradation path.
//
// Like the crawler plan, draws are pure functions of (seed, site, op
// index) — no shared RNG, no wall clock — so a soak run replays the exact
// same fault schedule for a fixed seed regardless of thread interleaving.
// Sleeps go through an injectable hook so tests can burn zero real time.
#pragma once

#include <cstdint>
#include <functional>

namespace mass {

struct CorpusDelta;

/// Write-path fault sites, mixed into the draw so each site sees an
/// independent deterministic stream.
enum class EngineFaultSite : uint64_t {
  kIngestPipeline = 1,
  kPoisonDelta = 2,
  kPublish = 3,
  kSpmv = 4,
  kTransport = 5,
};

/// A scripted fault schedule for the engine write path. Rates are
/// per-operation probabilities in [0, 1]; 0 disables a site. The plan is
/// passed by pointer through EngineOptions (never serialized) and must
/// outlive the engine.
struct EngineFaultPlan {
  /// Selects the fault pattern; two plans with different seeds fail
  /// different operations at the same rates.
  uint64_t seed = 0;

  /// P(injected Internal error mid-way through IngestDelta's scoring
  /// pipeline) — after the corpus application, before the solve, so the
  /// transactional rollback has real partially-updated state to undo.
  double ingest_failure_rate = 0.0;

  /// P(a CorpusDelta is poisoned before ingest). Poisoning gives one post
  /// an out-of-range true_domain, which the engine's pre-apply validation
  /// rejects with FailedPrecondition — a clean refusal, not a rollback.
  double poison_rate = 0.0;

  /// P(a snapshot publish stalls) and the stall length.
  double publish_stall_rate = 0.0;
  int64_t publish_stall_micros = 0;

  /// P(a solve's SpMV loop is slowed) and the added latency (charged once
  /// per iteration of the affected solve).
  double spmv_slow_rate = 0.0;
  int64_t spmv_slow_micros = 0;

  /// kTransport: per-message faults on the shard runtime's coordinator→
  /// worker exchanges. Each outbound message draws the four sub-faults
  /// independently (sub-stream op*4 + {0..3}); drop and truncate are
  /// absorbed by the deadline/retry machinery, kill shuts the worker down
  /// so the exchange surfaces Unavailable, delay just stalls the send.
  double transport_drop_rate = 0.0;
  double transport_truncate_rate = 0.0;
  double transport_kill_rate = 0.0;
  double transport_delay_rate = 0.0;
  int64_t transport_delay_micros = 0;

  /// Sleep hook for stalls/slowdowns. Null = std::this_thread::sleep_for.
  /// Soak harnesses inject a no-op or a virtual-clock advance here.
  std::function<void(int64_t)> sleep;
};

/// True when operation `op` at `site` faults under `plan` with
/// probability `rate`. Pure function of (plan.seed, site, op, rate):
/// call-order and thread-schedule free, like crawler DrawFault.
bool DrawEngineFault(const EngineFaultPlan& plan, EngineFaultSite site,
                     uint64_t op, double rate);

/// Sleeps via plan.sleep (or really sleeps when the hook is null).
void EngineFaultSleep(const EngineFaultPlan& plan, int64_t micros);

/// Applies the kPoisonDelta site to `delta` for operation index `op`:
/// when the draw fires (and the delta has at least one post), sets one
/// deterministically-chosen post's true_domain to -1 — invalid for any
/// domain count — and returns true. The engine's IngestDelta validation
/// then refuses the delta with FailedPrecondition before touching the
/// corpus. Returns false (delta untouched) otherwise.
bool MaybePoisonDelta(const EngineFaultPlan& plan, uint64_t op,
                      CorpusDelta* delta);

}  // namespace mass
