#include "core/quality.h"

#include <algorithm>

#include "text/lexicon.h"
#include "text/tokenizer.h"

namespace mass {

size_t CountCopyIndicators(std::string_view text) {
  TokenizerOptions opts;
  opts.strip_stopwords = false;
  opts.min_token_length = 1;
  Tokenizer tokenizer(opts);
  size_t count = 0;
  for (const std::string& tok : tokenizer.Tokenize(text)) {
    if (CopyIndicatorLexicon().ContainsStemmed(tok)) ++count;
  }
  return count;
}

double NoveltyOf(const Post& post, const NoveltyOptions& options) {
  size_t indicators =
      CountCopyIndicators(post.title) + CountCopyIndicators(post.content);
  if (indicators == 0) return 1.0;
  double novelty = options.copy_value -
                   options.per_extra_indicator *
                       static_cast<double>(indicators - 1);
  return std::max(options.copy_floor, novelty);
}

size_t PostLength(const Post& post) {
  return Tokenizer::CountWords(post.title) +
         Tokenizer::CountWords(post.content);
}

double QualityScore(const Post& post, double mean_length,
                    const NoveltyOptions& options) {
  double len = static_cast<double>(PostLength(post));
  if (mean_length > 0.0) len /= mean_length;
  return len * NoveltyOf(post, options);
}

}  // namespace mass
