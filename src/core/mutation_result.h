// MutationResult: the one result record shared by every corpus-mutating
// engine operation (IngestDelta appends, ExpireWindow removes). Callers
// that drive a sliding window — ingest the fresh crawl, expire the aged
// tail — read both directions through the same fields, and the engine
// mirrors each result into the `engine.mutation.*` metrics so external
// monitors see the same numbers the caller does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mass {

struct MutationResult {
  std::string op;          ///< "ingest" or "expire"
  /// The corpus changed and the new state was published. False for a
  /// validated no-op (all-duplicate delta, nothing aged out) — the prior
  /// snapshot is still current — and for failures.
  bool applied = false;
  /// A transactional failure rolled engine + corpus back bitwise to the
  /// pre-mutation state (the op's Status carries the cause).
  bool rolled_back = false;

  // Entities the operation added (ingest) / removed (expiry). Expiry
  // never removes bloggers or links — the GL network outlives any window.
  size_t added_bloggers = 0;
  size_t added_posts = 0;
  size_t added_comments = 0;
  size_t added_links = 0;
  size_t removed_posts = 0;
  size_t removed_comments = 0;

  /// Stored entries of the compiled CSR matrix after the operation (0 on
  /// the reference-solver path) and the signed change it applied — the
  /// numbers a bounded-steady-state gate watches.
  size_t matrix_nnz = 0;
  int64_t matrix_nnz_delta = 0;

  /// Fixed-point iterations of the (warm-started) solve this mutation
  /// triggered; 0 when nothing was solved.
  int warm_start_iterations = 0;
};

}  // namespace mass
