// QualityScore(b_i, d_k) — Eq. 2's content-quality component: the product
// of a post's length and its novelty, where novelty drops to (0, 0.1] for
// posts containing copy-indicator words (paper §II, following [2]: carbon
// copies bring little influence).
#pragma once

#include <string_view>

#include "model/entities.h"

namespace mass {

struct NoveltyOptions {
  /// Base novelty for a detected copy; additional indicator words reduce
  /// it further, floored at `copy_floor`. The paper's range is (0, 0.1].
  double copy_value = 0.1;
  double copy_floor = 0.01;
  /// Per-extra-indicator reduction.
  double per_extra_indicator = 0.02;
};

/// Counts copy-indicator words (stemmed lexicon matches) in `text`.
size_t CountCopyIndicators(std::string_view text);

/// Novelty(b_i, d_k): 1.0 for original posts, a value in
/// (0, copy_value] for detected copies.
double NoveltyOf(const Post& post, const NoveltyOptions& options = {});

/// Post length in words — the paper's quality proxy ("the longer a post,
/// the higher quality it is considered"), over title + content.
size_t PostLength(const Post& post);

/// QualityScore = normalized length * novelty. The raw length is divided
/// by `mean_length` (the corpus average) so quality is dimensionless and
/// commensurate with the mean-normalized GL and comment scores; pass 1.0
/// for the paper's raw-length behaviour.
double QualityScore(const Post& post, double mean_length,
                    const NoveltyOptions& options = {});

}  // namespace mass
