#include "core/analysis_snapshot.h"

#include <algorithm>
#include <cmath>
#include <string>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "core/topk.h"

namespace mass {

namespace {

// Same ordering contract as topk's Better(), applied to posts: score
// descending, id ascending, NaN last so a poisoned score can never make
// std::sort undefined.
bool BetterPost(const RankedPost& a, const RankedPost& b) {
  const bool a_nan = std::isnan(a.score);
  const bool b_nan = std::isnan(b.score);
  if (a_nan != b_nan) return b_nan;
  if (!a_nan && a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

// Sorts descending and keeps the best `cap` entries.
void SortAndCap(std::vector<RankedPost>* posts, size_t cap) {
  std::sort(posts->begin(), posts->end(), BetterPost);
  if (posts->size() > cap) posts->resize(cap);
  posts->shrink_to_fit();
}

// Lazy k-way merge of per-shard rankings, each sorted by BetterScored.
// BetterScored is a strict TOTAL order on distinct bloggers (ids are
// unique and break every tie), so merging sorted sublists reproduces the
// globally-sorted sequence byte for byte — the composite snapshot's
// ordering contract. O(k·S) with S = shard count; queries only pay for
// the k entries they return.
std::vector<ScoredBlogger> MergeShardTopK(
    const std::vector<std::vector<ScoredBlogger>>& lists, size_t k) {
  size_t total = 0;
  for (const auto& l : lists) total += l.size();
  const size_t n = std::min(k, total);
  std::vector<ScoredBlogger> out;
  out.reserve(n);
  std::vector<size_t> cursor(lists.size(), 0);
  while (out.size() < n) {
    size_t best = lists.size();
    for (size_t s = 0; s < lists.size(); ++s) {
      if (cursor[s] >= lists[s].size()) continue;
      if (best == lists.size() ||
          BetterScored(lists[s][cursor[s]], lists[best][cursor[best]])) {
        best = s;
      }
    }
    out.push_back(lists[best][cursor[best]++]);
  }
  return out;
}

}  // namespace

uint64_t AnalysisSnapshot::AgeMicros() const {
  if (publish_time == std::chrono::steady_clock::time_point{}) return 0;
  const auto age = std::chrono::steady_clock::now() - publish_time;
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(age).count();
  return us > 0 ? static_cast<uint64_t>(us) : 0;
}

Result<double> AnalysisSnapshot::InfluenceOf(BloggerId b) const {
  if (b >= influence.size()) {
    return Status::InvalidArgument("blogger id " + std::to_string(b) +
                                   " out of range (snapshot has " +
                                   std::to_string(influence.size()) +
                                   " bloggers)");
  }
  return influence[b];
}

Result<double> AnalysisSnapshot::GeneralLinksOf(BloggerId b) const {
  if (b >= general_links.size()) {
    return Status::InvalidArgument("blogger id " + std::to_string(b) +
                                   " out of range for GL");
  }
  return general_links[b];
}

Result<double> AnalysisSnapshot::AccumulatedPostOf(BloggerId b) const {
  if (b >= accumulated_post.size()) {
    return Status::InvalidArgument("blogger id " + std::to_string(b) +
                                   " out of range for AP");
  }
  return accumulated_post[b];
}

Result<double> AnalysisSnapshot::PostInfluenceOf(PostId p) const {
  if (p >= post_influence.size()) {
    return Status::InvalidArgument("post id " + std::to_string(p) +
                                   " out of range (snapshot has " +
                                   std::to_string(post_influence.size()) +
                                   " posts)");
  }
  return post_influence[p];
}

Result<double> AnalysisSnapshot::PostQualityOf(PostId p) const {
  if (p >= post_quality.size()) {
    return Status::InvalidArgument("post id " + std::to_string(p) +
                                   " out of range for quality");
  }
  return post_quality[p];
}

Result<double> AnalysisSnapshot::CommentFactorOf(CommentId c) const {
  if (c >= comment_sf.size()) {
    return Status::InvalidArgument("comment id " + std::to_string(c) +
                                   " out of range (snapshot has " +
                                   std::to_string(comment_sf.size()) +
                                   " comments)");
  }
  return comment_sf[c];
}

Result<double> AnalysisSnapshot::DomainInfluenceOf(BloggerId b,
                                                   size_t domain) const {
  if (b >= domain_influence.size()) {
    return Status::InvalidArgument("blogger id " + std::to_string(b) +
                                   " out of range for domain influence");
  }
  if (domain >= domain_influence[b].size()) {
    return Status::InvalidArgument("domain " + std::to_string(domain) +
                                   " out of range (snapshot has " +
                                   std::to_string(num_domains) + " domains)");
  }
  return domain_influence[b][domain];
}

const std::vector<double>* AnalysisSnapshot::DomainVectorOf(
    BloggerId b) const {
  return b < domain_influence.size() ? &domain_influence[b] : nullptr;
}

const std::vector<double>* AnalysisSnapshot::PostInterestsOf(PostId p) const {
  return p < post_interests.size() ? &post_interests[p] : nullptr;
}

const std::vector<double>* AnalysisSnapshot::InterestsOfBlogger(
    BloggerId b) const {
  return b < blogger_interests.size() ? &blogger_interests[b] : nullptr;
}

std::vector<ScoredBlogger> AnalysisSnapshot::TopKGeneral(size_t k) const {
  if (num_ranking_shards > 0) {
    return MergeShardTopK(shard_general_rankings, k);
  }
  const size_t n = std::min(k, general_ranking.size());
  return {general_ranking.begin(), general_ranking.begin() + n};
}

Result<std::vector<ScoredBlogger>> AnalysisSnapshot::TopKDomain(
    size_t domain, size_t k) const {
  const size_t ranked_domains = num_ranking_shards > 0
                                    ? shard_domain_rankings.size()
                                    : domain_rankings.size();
  if (domain >= ranked_domains) {
    return Status::InvalidArgument("domain " + std::to_string(domain) +
                                   " out of range (snapshot has " +
                                   std::to_string(ranked_domains) +
                                   " ranked domains)");
  }
  if (num_ranking_shards > 0) {
    return MergeShardTopK(shard_domain_rankings[domain], k);
  }
  const auto& ranking = domain_rankings[domain];
  const size_t n = std::min(k, ranking.size());
  return std::vector<ScoredBlogger>(ranking.begin(), ranking.begin() + n);
}

std::vector<ScoredBlogger> AnalysisSnapshot::TopKWeighted(
    const std::vector<double>& weights, size_t k) const {
  return TopKByScore(Eq5ScoresSoA(*this, weights), k);
}

std::vector<double> Eq5ScoresScalar(const AnalysisSnapshot& snapshot,
                                    const std::vector<double>& weights) {
  // Eq. 5: score(b) = sum_d Inf(b, d) * w_d, over the domains both sides
  // cover. Same fold as MassEngine::TopKWeighted, so results match the
  // live engine bit for bit.
  std::vector<double> scores(snapshot.num_bloggers(), 0.0);
  for (size_t b = 0; b < snapshot.domain_influence.size(); ++b) {
    const auto& dv = snapshot.domain_influence[b];
    const size_t nd = std::min(dv.size(), weights.size());
    double s = 0.0;
    for (size_t d = 0; d < nd; ++d) s += dv[d] * weights[d];
    scores[b] = s;
  }
  return scores;
}

std::vector<double> Eq5ScoresSoA(const AnalysisSnapshot& snapshot,
                                 const std::vector<double>& weights) {
  const size_t nb = snapshot.num_bloggers();
  if (snapshot.interest_plane.size() != nb * snapshot.num_domains) {
    return Eq5ScoresScalar(snapshot, weights);  // plane not built (raw v1)
  }
  const size_t nd = std::min(snapshot.num_domains, weights.size());
  std::vector<double> scores(nb, 0.0);
  double* const out = scores.data();
  for (size_t d = 0; d < nd; ++d) {
    const double w = weights[d];
    const double* const row = snapshot.interest_plane.data() + d * nb;
    // One axpy per domain. Zero weights are NOT skipped: adding a ±0.0
    // product can still flip a -0.0 accumulator to +0.0, so skipping
    // would break the byte-identical contract with the scalar fold.
    size_t b = 0;
#if defined(__AVX2__)
    // Explicit 4-lane path (compiled only under -mavx2 / -march=native):
    // each lane owns one blogger, so the per-blogger mul-then-add order —
    // and therefore the rounding — matches the scalar kernel exactly. No
    // FMA: fused rounding would diverge from the scalar path.
    for (; b + 4 <= nb; b += 4) {
      __m256d acc = _mm256_loadu_pd(out + b);
      __m256d prod = _mm256_mul_pd(_mm256_set1_pd(w), _mm256_loadu_pd(row + b));
      _mm256_storeu_pd(out + b, _mm256_add_pd(acc, prod));
    }
#endif
    for (; b < nb; ++b) out[b] += w * row[b];
  }
  return scores;
}

ResolvedWindow ResolveWindow(const WindowSpec& w,
                             const std::vector<int64_t>& timestamps) {
  ResolvedWindow r;
  r.pinned = w.as_of > 0;
  int64_t anchor = w.as_of;
  if (!r.pinned) {
    for (int64_t t : timestamps) anchor = std::max(anchor, t);
  }
  r.anchor = anchor;
  r.has_cutoff = w.horizon_secs > 0;
  r.cutoff = anchor - w.horizon_secs;
  return r;
}

std::vector<ScoredBlogger> AnalysisSnapshot::TopKGeneralWindowed(
    size_t k, const WindowSpec& w) const {
  if (!w.enabled()) return TopKGeneral(k);
  const ResolvedWindow rw = ResolveWindow(w, post_timestamps);
  std::vector<double> scores(num_bloggers(), 0.0);
  const size_t np = num_posts();
  for (size_t p = 0; p < np && p < post_timestamps.size(); ++p) {
    if (!rw.Contains(post_timestamps[p])) continue;
    const BloggerId a = p < post_authors.size() ? post_authors[p]
                                                : kInvalidBlogger;
    if (a >= scores.size()) continue;
    scores[a] += post_influence[p];
  }
  return TopKByScore(scores, k);
}

Result<std::vector<ScoredBlogger>> AnalysisSnapshot::TopKDomainWindowed(
    size_t domain, size_t k, const WindowSpec& w) const {
  if (!w.enabled()) return TopKDomain(domain, k);
  if (domain >= num_domains) {
    return Status::InvalidArgument("domain " + std::to_string(domain) +
                                   " out of range (snapshot has " +
                                   std::to_string(num_domains) + " domains)");
  }
  const ResolvedWindow rw = ResolveWindow(w, post_timestamps);
  std::vector<double> scores(num_bloggers(), 0.0);
  const size_t np = num_posts();
  for (size_t p = 0; p < np && p < post_timestamps.size(); ++p) {
    if (!rw.Contains(post_timestamps[p])) continue;
    const BloggerId a = p < post_authors.size() ? post_authors[p]
                                                : kInvalidBlogger;
    if (a >= scores.size()) continue;
    const auto& iv = post_interests[p];
    const double weight = domain < iv.size() ? iv[domain] : 0.0;
    scores[a] += post_influence[p] * weight;
  }
  return TopKByScore(scores, k);
}

std::vector<ScoredBlogger> AnalysisSnapshot::TopKWeightedWindowed(
    const std::vector<double>& weights, size_t k, const WindowSpec& w) const {
  if (!w.enabled()) return TopKWeighted(weights, k);
  const ResolvedWindow rw = ResolveWindow(w, post_timestamps);
  std::vector<double> scores(num_bloggers(), 0.0);
  const size_t np = num_posts();
  for (size_t p = 0; p < np && p < post_timestamps.size(); ++p) {
    if (!rw.Contains(post_timestamps[p])) continue;
    const BloggerId a = p < post_authors.size() ? post_authors[p]
                                                : kInvalidBlogger;
    if (a >= scores.size()) continue;
    const auto& iv = post_interests[p];
    const size_t nd = std::min(iv.size(), weights.size());
    double dot = 0.0;
    for (size_t d = 0; d < nd; ++d) dot += iv[d] * weights[d];
    scores[a] += post_influence[p] * dot;
  }
  return TopKByScore(scores, k);
}

Result<std::vector<RankedPost>> AnalysisSnapshot::TopPostsOfDomainWindowed(
    size_t domain, size_t k, const WindowSpec& w) const {
  if (!w.enabled()) return TopPostsOfDomain(domain, k);
  if (domain >= num_domains) {
    return Status::InvalidArgument("domain " + std::to_string(domain) +
                                   " out of range (snapshot has " +
                                   std::to_string(num_domains) + " domains)");
  }
  const ResolvedWindow rw = ResolveWindow(w, post_timestamps);
  std::vector<RankedPost> ranked;
  const size_t np = num_posts();
  for (size_t p = 0; p < np && p < post_timestamps.size(); ++p) {
    if (!rw.Contains(post_timestamps[p])) continue;
    const auto& iv = post_interests[p];
    const double weight = domain < iv.size() ? iv[domain] : 0.0;
    const double score = post_influence[p] * weight;
    if (score <= 0.0) continue;
    ranked.push_back(RankedPost{
        static_cast<PostId>(p),
        p < post_authors.size() ? post_authors[p] : kInvalidBlogger,
        p < post_titles.size() ? post_titles[p] : std::string(), score});
  }
  std::sort(ranked.begin(), ranked.end(), BetterPost);
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

Result<std::vector<RankedPost>> AnalysisSnapshot::TopPostsOfDomain(
    size_t domain, size_t k) const {
  if (domain >= domain_top_posts.size()) {
    return Status::InvalidArgument("domain " + std::to_string(domain) +
                                   " out of range (snapshot has " +
                                   std::to_string(domain_top_posts.size()) +
                                   " post indexes)");
  }
  const auto& posts = domain_top_posts[domain];
  const size_t n = std::min(k, posts.size());
  return std::vector<RankedPost>(posts.begin(), posts.begin() + n);
}

void AnalysisSnapshot::BuildDerived() {
  BuildDerivedCommon();
  const size_t nb = num_bloggers();
  const size_t nd = num_domains;

  num_ranking_shards = 0;
  shard_general_rankings.clear();
  shard_domain_rankings.clear();

  general_ranking = FullRanking(influence);
  domain_rankings.assign(nd, {});
  std::vector<double> column(nb, 0.0);
  for (size_t d = 0; d < nd; ++d) {
    const double* row = interest_plane.data() + d * nb;
    column.assign(row, row + nb);
    domain_rankings[d] = FullRanking(column);
  }
}

void AnalysisSnapshot::BuildDerivedSharded(
    const std::vector<uint32_t>& shard_of, size_t num_shards) {
  BuildDerivedCommon();
  const size_t nb = num_bloggers();
  const size_t nd = num_domains;
  if (num_shards == 0) num_shards = 1;

  num_ranking_shards = num_shards;
  general_ranking.clear();
  domain_rankings.clear();

  // A blogger outside the plan (shouldn't happen: the plan is rebuilt per
  // solve) falls back to shard 0 rather than vanishing from rankings.
  auto shard_for = [&](size_t b) {
    const uint32_t s = b < shard_of.size() ? shard_of[b] : 0;
    return s < num_shards ? s : 0u;
  };

  shard_general_rankings.assign(num_shards, {});
  for (size_t b = 0; b < nb; ++b) {
    shard_general_rankings[shard_for(b)].push_back(
        ScoredBlogger{static_cast<BloggerId>(b), influence[b]});
  }
  for (auto& ranking : shard_general_rankings) {
    std::sort(ranking.begin(), ranking.end(), BetterScored);
  }

  shard_domain_rankings.assign(
      nd, std::vector<std::vector<ScoredBlogger>>(num_shards));
  for (size_t d = 0; d < nd; ++d) {
    const double* row = interest_plane.data() + d * nb;
    auto& per_shard = shard_domain_rankings[d];
    for (size_t b = 0; b < nb; ++b) {
      per_shard[shard_for(b)].push_back(
          ScoredBlogger{static_cast<BloggerId>(b), row[b]});
    }
    for (auto& ranking : per_shard) {
      std::sort(ranking.begin(), ranking.end(), BetterScored);
    }
  }
}

void AnalysisSnapshot::BuildDerivedCommon() {
  const size_t nb = num_bloggers();
  const size_t np = num_posts();
  const size_t nd = num_domains;

  // Transpose the [b][d] domain vectors into the contiguous [d][b] plane
  // the Eq. 5 kernel streams; each domain row doubles as the ranking
  // column for the BuildDerived variants.
  interest_plane.assign(nd * nb, 0.0);
  for (size_t b = 0; b < nb && b < domain_influence.size(); ++b) {
    const auto& dv = domain_influence[b];
    const size_t n = std::min(dv.size(), nd);
    for (size_t d = 0; d < n; ++d) interest_plane[d * nb + b] = dv[d];
  }

  // Mean interest vector over each blogger's own posts; uniform 1/nd for
  // a blogger with no posts (same fallback the recommender used against
  // the live corpus).
  blogger_interests.assign(nb, std::vector<double>(nd, 0.0));
  std::vector<uint32_t> posts_of(nb, 0);
  for (size_t p = 0; p < np; ++p) {
    const BloggerId a = p < post_authors.size() ? post_authors[p]
                                                : kInvalidBlogger;
    if (a >= nb) continue;
    const auto& iv = post_interests[p];
    auto& acc = blogger_interests[a];
    const size_t n = std::min(iv.size(), nd);
    for (size_t d = 0; d < n; ++d) acc[d] += iv[d];
    ++posts_of[a];
  }
  for (size_t b = 0; b < nb; ++b) {
    auto& acc = blogger_interests[b];
    if (posts_of[b] > 0) {
      for (double& v : acc) v /= posts_of[b];
    } else if (nd > 0) {
      std::fill(acc.begin(), acc.end(), 1.0 / static_cast<double>(nd));
    }
  }

  // Post indexes. A snapshot without per-post data (a version-1 file)
  // keeps these empty-per-slot rather than absent, so lookups still
  // bounds-check cleanly.
  domain_top_posts.assign(nd, {});
  blogger_key_posts.assign(nb, {});
  if (np == 0) return;

  for (size_t d = 0; d < nd; ++d) {
    auto& bucket = domain_top_posts[d];
    for (size_t p = 0; p < np; ++p) {
      const auto& iv = post_interests[p];
      const double w = d < iv.size() ? iv[d] : 0.0;
      const double score = post_influence[p] * w;
      if (score <= 0.0) continue;
      bucket.push_back(RankedPost{
          static_cast<PostId>(p),
          p < post_authors.size() ? post_authors[p] : kInvalidBlogger,
          p < post_titles.size() ? post_titles[p] : std::string(), score});
    }
    SortAndCap(&bucket, kTopPostsPerDomain);
  }

  for (size_t p = 0; p < np; ++p) {
    const BloggerId a = p < post_authors.size() ? post_authors[p]
                                                : kInvalidBlogger;
    if (a >= nb) continue;
    blogger_key_posts[a].push_back(RankedPost{
        static_cast<PostId>(p), a,
        p < post_titles.size() ? post_titles[p] : std::string(),
        post_influence[p]});
  }
  for (auto& posts : blogger_key_posts) {
    SortAndCap(&posts, kKeyPostsPerBlogger);
  }
}

Status AnalysisSnapshot::CheckConsistent() const {
  const size_t nb = num_bloggers();
  const size_t np = num_posts();
  const size_t nd = num_domains;

  auto expect = [](size_t got, size_t want, const char* what) -> Status {
    if (got != want) {
      return Status::Corruption(std::string(what) + " size " +
                                std::to_string(got) + " != expected " +
                                std::to_string(want));
    }
    return Status::OK();
  };

  MASS_RETURN_IF_ERROR(expect(general_links.size(), nb, "general_links"));
  MASS_RETURN_IF_ERROR(
      expect(accumulated_post.size(), nb, "accumulated_post"));
  MASS_RETURN_IF_ERROR(
      expect(domain_influence.size(), nb, "domain_influence"));
  for (const auto& dv : domain_influence) {
    MASS_RETURN_IF_ERROR(expect(dv.size(), nd, "domain_influence row"));
  }
  MASS_RETURN_IF_ERROR(expect(blogger_names.size(), nb, "blogger_names"));
  MASS_RETURN_IF_ERROR(expect(blogger_urls.size(), nb, "blogger_urls"));
  MASS_RETURN_IF_ERROR(
      expect(blogger_post_counts.size(), nb, "blogger_post_counts"));
  MASS_RETURN_IF_ERROR(expect(blogger_comments_received.size(), nb,
                              "blogger_comments_received"));
  MASS_RETURN_IF_ERROR(expect(blogger_comments_written.size(), nb,
                              "blogger_comments_written"));

  MASS_RETURN_IF_ERROR(expect(post_quality.size(), np, "post_quality"));
  MASS_RETURN_IF_ERROR(expect(post_interests.size(), np, "post_interests"));
  for (const auto& iv : post_interests) {
    MASS_RETURN_IF_ERROR(expect(iv.size(), nd, "post_interests row"));
  }
  MASS_RETURN_IF_ERROR(expect(post_authors.size(), np, "post_authors"));
  MASS_RETURN_IF_ERROR(expect(post_timestamps.size(), np, "post_timestamps"));
  MASS_RETURN_IF_ERROR(expect(post_titles.size(), np, "post_titles"));

  MASS_RETURN_IF_ERROR(
      expect(blogger_interests.size(), nb, "blogger_interests"));
  for (const auto& iv : blogger_interests) {
    MASS_RETURN_IF_ERROR(expect(iv.size(), nd, "blogger_interests row"));
  }
  MASS_RETURN_IF_ERROR(
      expect(interest_plane.size(), nb * nd, "interest_plane"));
  for (size_t b = 0; b < nb; ++b) {
    const auto& dv = domain_influence[b];
    for (size_t d = 0; d < nd; ++d) {
      if (interest_plane[d * nb + b] != dv[d]) {
        return Status::Corruption("interest_plane diverges from "
                                  "domain_influence");
      }
    }
  }
  if (num_ranking_shards == 0) {
    MASS_RETURN_IF_ERROR(
        expect(general_ranking.size(), nb, "general_ranking"));
    MASS_RETURN_IF_ERROR(
        expect(domain_rankings.size(), nd, "domain_rankings"));
    for (const auto& ranking : domain_rankings) {
      MASS_RETURN_IF_ERROR(expect(ranking.size(), nb, "domain ranking"));
      for (const auto& sb : ranking) {
        if (sb.id >= nb) {
          return Status::Corruption("ranked blogger id out of range");
        }
      }
    }
  } else {
    // Composite mode: every blogger appears in exactly one shard list per
    // surface, so the shard sizes must sum to nb (a blogger missing from
    // its shard would silently vanish from merged top-k results).
    MASS_RETURN_IF_ERROR(expect(shard_general_rankings.size(),
                                num_ranking_shards,
                                "shard_general_rankings"));
    size_t general_total = 0;
    for (const auto& ranking : shard_general_rankings) {
      general_total += ranking.size();
      for (const auto& sb : ranking) {
        if (sb.id >= nb) {
          return Status::Corruption("sharded ranked blogger id out of range");
        }
      }
    }
    MASS_RETURN_IF_ERROR(
        expect(general_total, nb, "shard_general_rankings total"));
    MASS_RETURN_IF_ERROR(
        expect(shard_domain_rankings.size(), nd, "shard_domain_rankings"));
    for (const auto& per_shard : shard_domain_rankings) {
      MASS_RETURN_IF_ERROR(expect(per_shard.size(), num_ranking_shards,
                                  "shard_domain_rankings row"));
      size_t domain_total = 0;
      for (const auto& ranking : per_shard) {
        domain_total += ranking.size();
        for (const auto& sb : ranking) {
          if (sb.id >= nb) {
            return Status::Corruption(
                "sharded domain-ranked blogger id out of range");
          }
        }
      }
      MASS_RETURN_IF_ERROR(
          expect(domain_total, nb, "shard domain ranking total"));
    }
  }
  MASS_RETURN_IF_ERROR(
      expect(domain_top_posts.size(), nd, "domain_top_posts"));
  for (const auto& posts : domain_top_posts) {
    if (posts.size() > kTopPostsPerDomain) {
      return Status::Corruption("domain_top_posts over cap");
    }
    for (const auto& rp : posts) {
      if (rp.id >= np) return Status::Corruption("top post id out of range");
    }
  }
  MASS_RETURN_IF_ERROR(
      expect(blogger_key_posts.size(), nb, "blogger_key_posts"));
  for (const auto& posts : blogger_key_posts) {
    if (posts.size() > kKeyPostsPerBlogger) {
      return Status::Corruption("blogger_key_posts over cap");
    }
    for (const auto& rp : posts) {
      if (rp.id >= np) return Status::Corruption("key post id out of range");
    }
  }
  return Status::OK();
}

}  // namespace mass
