// AnalysisSnapshot: the immutable, self-contained output of one engine
// solve — every score surface of Eq. 1-5 plus the blogger/post metadata a
// serving front-end displays, with the per-domain rankings and top-post
// indexes precomputed so queries are O(k) slices instead of O(n) scans.
//
// Snapshots are the read half of the engine's read/write split: the write
// path (MassEngine::Analyze/Retune/IngestDelta) materializes one on every
// successful solve and publishes it by atomic shared_ptr swap
// (MassEngine::CurrentSnapshot()); readers pin a snapshot once per query
// and never touch the live engine or the (mutating) corpus. A pinned
// snapshot stays valid and bitwise frozen for as long as the reader holds
// the shared_ptr, no matter how many ingests retire it in the meantime.
//
// Unlike the live engine accessors, every per-entity accessor here is
// bounds-checked and returns Result<T> — a snapshot is a serving surface,
// and out-of-range ids from untrusted queries must be errors, not UB.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/entities.h"

namespace mass {

/// One ranked blogger.
struct ScoredBlogger {
  BloggerId id = kInvalidBlogger;
  double score = 0.0;
};

/// One entry of a precomputed post index (a blogger's key posts, a
/// domain's top posts). Carries the title so it can be rendered without
/// touching the corpus.
struct RankedPost {
  PostId id = kInvalidPost;
  BloggerId author = kInvalidBlogger;
  std::string title;
  double score = 0.0;  ///< Inf(p), or Inf(p)*iv[d] in a domain index
};

/// The immutable result of one solve. Built by the engine (or loaded from
/// storage/analysis_xml) and then never mutated; all sharing is via
/// shared_ptr<const AnalysisSnapshot>.
struct AnalysisSnapshot {
  /// Monotonic publish sequence within one engine (1 = first Analyze).
  uint64_t sequence = 0;
  /// Which write-path call produced it: "analyze", "retune", "ingest",
  /// or "loaded" for snapshots deserialized from disk.
  std::string produced_by;
  size_t num_domains = 0;

  // ---- per-blogger surfaces ----
  std::vector<double> influence;        ///< Inf(b), Eq. 1, mean 1
  std::vector<double> general_links;    ///< GL(b)
  std::vector<double> accumulated_post; ///< AP(b)
  std::vector<std::vector<double>> domain_influence;  ///< [b][d], Eq. 5
  std::vector<std::string> blogger_names;
  std::vector<std::string> blogger_urls;
  std::vector<uint32_t> blogger_post_counts;
  std::vector<uint32_t> blogger_comments_received;
  std::vector<uint32_t> blogger_comments_written;

  // ---- per-post surfaces ----
  std::vector<double> post_influence;  ///< Inf(b, d_k), Eq. 4
  std::vector<double> post_quality;
  std::vector<std::vector<double>> post_interests;  ///< iv, [p][d]
  std::vector<BloggerId> post_authors;
  std::vector<int64_t> post_timestamps;
  std::vector<std::string> post_titles;

  // ---- per-comment surfaces ----
  std::vector<double> comment_sf;  ///< SF assigned to each comment

  // ---- derived indexes (BuildDerived) ----
  /// Mean interest vector of each blogger's own posts (uniform for a
  /// blogger with no posts); Scenario-2 recommendation reads this.
  std::vector<std::vector<double>> blogger_interests;
  /// All bloggers sorted by Inf(b) desc, ties by id asc. Empty in a
  /// sharded-composite snapshot (see num_ranking_shards) — use
  /// TopKGeneral(), which merges lazily.
  std::vector<ScoredBlogger> general_ranking;
  /// [d]: all bloggers sorted by Inf(b, d) desc, ties by id asc. Empty in
  /// a sharded-composite snapshot — use TopKDomain().
  std::vector<std::vector<ScoredBlogger>> domain_rankings;
  /// Sharded-composite mode (BuildDerivedSharded): 0 = dense rankings
  /// above; >0 = the rankings live shard-local below and TopKGeneral /
  /// TopKDomain k-way merge them lazily, so a publish sorts K small lists
  /// in parallel instead of one global list per domain, and queries only
  /// pay merge cost for the k entries they return. The merged order is
  /// byte-identical to the dense ranking: every list is sorted by the same
  /// strict total order (BetterScored — ids are unique, so there are no
  /// equal elements to reorder).
  size_t num_ranking_shards = 0;
  /// [s]: the s-th shard's bloggers sorted by Inf(b) desc, ties id asc.
  std::vector<std::vector<ScoredBlogger>> shard_general_rankings;
  /// [d][s]: the s-th shard's bloggers sorted by Inf(b, d).
  std::vector<std::vector<std::vector<ScoredBlogger>>> shard_domain_rankings;
  /// [d]: top posts by Inf(p)*iv[p][d], capped at kTopPostsPerDomain.
  std::vector<std::vector<RankedPost>> domain_top_posts;
  /// [b]: the blogger's best posts by Inf(p), capped at
  /// kKeyPostsPerBlogger (the demo pop-up's "important posts").
  std::vector<std::vector<RankedPost>> blogger_key_posts;
  /// Structure-of-arrays mirror of domain_influence for the Eq. 5 hot
  /// path: interest_plane[d * num_bloggers() + b] == domain_influence[b][d].
  /// One contiguous row per domain lets the weighted-scoring kernel stream
  /// cache lines and auto-vectorize instead of chasing nb small vectors.
  std::vector<double> interest_plane;

  /// Publish instant (steady clock); serves the serve.snapshot.age_us
  /// metric. Unset (epoch) for loaded snapshots.
  std::chrono::steady_clock::time_point publish_time{};

  static constexpr size_t kTopPostsPerDomain = 32;
  static constexpr size_t kKeyPostsPerBlogger = 8;

  size_t num_bloggers() const { return influence.size(); }
  size_t num_posts() const { return post_influence.size(); }
  size_t num_comments() const { return comment_sf.size(); }

  /// Microseconds since publish_time (0 when unset).
  uint64_t AgeMicros() const;

  // ---- checked per-entity accessors ----
  // InvalidArgument on out-of-range ids — never UB. The live-engine
  // counterparts (MassEngine::InfluenceOf etc.) clamp to 0 instead.
  Result<double> InfluenceOf(BloggerId b) const;
  Result<double> GeneralLinksOf(BloggerId b) const;
  Result<double> AccumulatedPostOf(BloggerId b) const;
  Result<double> PostInfluenceOf(PostId p) const;
  Result<double> PostQualityOf(PostId p) const;
  Result<double> CommentFactorOf(CommentId c) const;
  Result<double> DomainInfluenceOf(BloggerId b, size_t domain) const;

  /// Full vectors; nullptr when the id is out of range (or, for
  /// InterestsOfBlogger, when the snapshot lacks per-post data).
  const std::vector<double>* DomainVectorOf(BloggerId b) const;
  const std::vector<double>* PostInterestsOf(PostId p) const;
  const std::vector<double>* InterestsOfBlogger(BloggerId b) const;

  // ---- rankings (precomputed; ties break toward smaller ids) ----
  /// Top-k by Inf(b): an O(k) slice of general_ranking, or an O(k·S)
  /// lazy merge of the shard-local rankings in composite mode.
  std::vector<ScoredBlogger> TopKGeneral(size_t k) const;
  /// Top-k by Inf(b, d): an O(k) slice of domain_rankings[d] (O(k·S)
  /// merge in composite mode).
  Result<std::vector<ScoredBlogger>> TopKDomain(size_t domain,
                                                size_t k) const;
  /// Top-k by the Eq. 5 dot product Inf(b, IV) . weights (the Scenario-1
  /// advertisement ranking). Computed on the fly — the weight vector is
  /// query-supplied, so it cannot be precomputed. Scores come from the
  /// vectorized SoA kernel when BuildDerived filled interest_plane
  /// (byte-identical to the per-blogger fold), else the scalar fallback.
  std::vector<ScoredBlogger> TopKWeighted(const std::vector<double>& weights,
                                          size_t k) const;
  /// Top posts of one domain (≤ kTopPostsPerDomain are stored).
  Result<std::vector<RankedPost>> TopPostsOfDomain(size_t domain,
                                                   size_t k) const;

  // ---- windowed rankings ----
  //
  // Same surfaces restricted to posts inside `w`, evaluated against
  // post_timestamps: anchor = w.as_of when pinned, else the newest post in
  // the snapshot; a post is in-window when timestamp >= anchor -
  // horizon_secs (if a horizon is set) and, under a pinned anchor, not
  // after it. A windowed blogger score is the sum of the blogger's
  // in-window post influences (times the domain/Eq. 5 weight where
  // applicable) — the solve-time scores are NOT re-decayed; the window is
  // a hard filter at query time. These scan all posts (O(np)) instead of
  // slicing a precomputed ranking: the capped per-domain post index can't
  // answer an arbitrary window. A disabled `w` falls through to the
  // unwindowed precomputed surface.

  /// Top-k by windowed Σ Inf(p) per author.
  std::vector<ScoredBlogger> TopKGeneralWindowed(size_t k,
                                                 const WindowSpec& w) const;
  /// Top-k by windowed Σ Inf(p)·iv_p[d] per author.
  Result<std::vector<ScoredBlogger>> TopKDomainWindowed(
      size_t domain, size_t k, const WindowSpec& w) const;
  /// Top-k by windowed Σ Inf(p)·(iv_p · weights) per author.
  std::vector<ScoredBlogger> TopKWeightedWindowed(
      const std::vector<double>& weights, size_t k, const WindowSpec& w) const;
  /// Top in-window posts of one domain by Inf(p)·iv_p[d] (full scan, not
  /// the capped index, so any k up to the in-window post count works).
  Result<std::vector<RankedPost>> TopPostsOfDomainWindowed(
      size_t domain, size_t k, const WindowSpec& w) const;

  /// Recomputes every derived index from the raw surfaces. Deterministic:
  /// identical raw surfaces produce byte-identical rankings regardless of
  /// which solver path (scalar or CSR) or which session produced them.
  /// Tolerates missing per-post data (a version-1 file): post-derived
  /// indexes stay empty, blogger rankings still build.
  void BuildDerived();

  /// Sharded-composite variant: builds the same derived surfaces but
  /// stores per-shard rankings (shard s owns blogger b iff
  /// shard_of[b] == s) instead of dense global ones; top-k queries merge
  /// them lazily with byte-identical ordering. The engine calls this when
  /// it solved sharded (EngineOptions::num_shards > 1). Note that
  /// storage/analysis_xml re-derives with the dense BuildDerived() on
  /// load, so a round-tripped composite snapshot comes back dense —
  /// identical query results either way.
  void BuildDerivedSharded(const std::vector<uint32_t>& shard_of,
                           size_t num_shards);

  /// Shared body of the two BuildDerived variants: interest plane,
  /// blogger interest vectors, and the post indexes — everything except
  /// the blogger rankings.
  void BuildDerivedCommon();

  /// Cross-checks every surface and index dimension against
  /// num_bloggers/num_posts/num_domains. OK for a snapshot frozen by a
  /// completed solve; any mismatch means a torn or partially-applied
  /// publish, which the concurrency tests assert can never be observed.
  Status CheckConsistent() const;
};

/// A WindowSpec resolved against a concrete set of timestamps: the anchor
/// is pinned (w.as_of) or the newest timestamp seen, and the cutoff is
/// materialized once so the per-entity test is two comparisons. Shared by
/// the snapshot's windowed rankings, the serving layer's key-post filter,
/// and the trend analyzer, so "in window" means the same thing on every
/// query surface.
struct ResolvedWindow {
  int64_t anchor = 0;
  int64_t cutoff = 0;      ///< anchor - horizon; meaningful iff has_cutoff
  bool has_cutoff = false; ///< a horizon was set
  bool pinned = false;     ///< anchor came from w.as_of, not the corpus

  /// True when `t` is inside the window. Entities after a pinned anchor
  /// are out (they postdate the query's "now"); after a corpus-relative
  /// anchor nothing can postdate it, so only the cutoff applies.
  bool Contains(int64_t t) const {
    if (has_cutoff && t < cutoff) return false;
    if (pinned && t > anchor) return false;
    return true;
  }
};

/// Resolves `w` against `timestamps` (the newest entry anchors a
/// corpus-relative window; empty input anchors at 0).
ResolvedWindow ResolveWindow(const WindowSpec& w,
                             const std::vector<int64_t>& timestamps);

// ---- Eq. 5 weighted-scoring kernels ----
//
// Both return, for every blogger b, score(b) = sum_d Inf(b, d) * w_d over
// the domains both sides cover. The scalar kernel folds each blogger's
// domain vector (AoS: one small vector per blogger); the SoA kernel
// streams interest_plane one domain row at a time (axpy per domain), which
// the compiler vectorizes. Per blogger, both accumulate in ascending
// domain order with separately-rounded multiply and add, so the results
// are BYTE-IDENTICAL — the serving parity tests assert exact equality.

/// Scalar reference: per-blogger fold over domain_influence.
std::vector<double> Eq5ScoresScalar(const AnalysisSnapshot& snapshot,
                                    const std::vector<double>& weights);

/// Vectorized kernel over the SoA interest_plane. Requires the plane to be
/// built (BuildDerived); falls back to the scalar kernel when it is not.
std::vector<double> Eq5ScoresSoA(const AnalysisSnapshot& snapshot,
                                 const std::vector<double>& weights);

}  // namespace mass
