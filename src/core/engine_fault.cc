#include "core/engine_fault.h"

#include <chrono>
#include <thread>

#include "model/corpus_delta.h"

namespace mass {

namespace {

// SplitMix64 finalizer over the (seed, site, op) key: full avalanche, so
// consecutive op indices decorrelate and each site sees an independent
// stream from the same seed.
uint64_t Mix(uint64_t seed, EngineFaultSite site, uint64_t op) {
  uint64_t x = seed ^ (static_cast<uint64_t>(site) * 0xD1B54A32D192ED03ull) ^
               (op * 0x9E3779B97F4A7C15ull);
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

bool DrawEngineFault(const EngineFaultPlan& plan, EngineFaultSite site,
                     uint64_t op, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Top 53 bits -> uniform double in [0, 1), the standard construction.
  const double u =
      static_cast<double>(Mix(plan.seed, site, op) >> 11) * 0x1.0p-53;
  return u < rate;
}

void EngineFaultSleep(const EngineFaultPlan& plan, int64_t micros) {
  if (micros <= 0) return;
  if (plan.sleep) {
    plan.sleep(micros);
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

bool MaybePoisonDelta(const EngineFaultPlan& plan, uint64_t op,
                      CorpusDelta* delta) {
  if (delta == nullptr || delta->additions.num_posts() == 0) return false;
  if (!DrawEngineFault(plan, EngineFaultSite::kPoisonDelta, op,
                       plan.poison_rate)) {
    return false;
  }
  // Victim selection reuses the mixer with a salted seed so it is
  // independent of the fire/no-fire draw but still pure in (seed, op).
  const size_t victim =
      Mix(plan.seed ^ 0xA5A5A5A5A5A5A5A5ull, EngineFaultSite::kPoisonDelta,
          op) %
      delta->additions.num_posts();
  delta->additions.mutable_post(static_cast<PostId>(victim)).true_domain = -1;
  return true;
}

}  // namespace mass
