// Top-k selection over blogger scores. Ties break toward the smaller
// blogger id so rankings are deterministic. Both the O(n log k) heap
// selection used everywhere and an O(n log n) full sort (bench S5's
// baseline) are provided.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "model/entities.h"

namespace mass {

struct ScoredBlogger;  // defined in analysis_snapshot.h

/// The ordering every ranked blogger list uses: score descending, ties by
/// id ascending, NaN scores last (among themselves by id — strict weak
/// order even on poisoned scores). Exposed so shard-local rankings can be
/// sorted and lazily merged with byte-identical ordering to a global sort.
bool BetterScored(const ScoredBlogger& a, const ScoredBlogger& b);

/// Heap-based top-k: O(n log k).
std::vector<ScoredBlogger> TopKByScore(const std::vector<double>& scores,
                                       size_t k);

/// Every blogger sorted by score (desc, ties by id asc): the precomputed
/// ranking an AnalysisSnapshot stores so top-k queries are O(k) slices.
std::vector<ScoredBlogger> FullRanking(const std::vector<double>& scores);

/// Full-sort top-k: O(n log n); identical output, for benchmarking.
std::vector<ScoredBlogger> TopKByScoreFullSort(
    const std::vector<double>& scores, size_t k);

/// Top-k restricted to bloggers accepted by `keep` — e.g. business users
/// excluding low-activity bloggers or suspected spam accounts from a
/// campaign shortlist.
std::vector<ScoredBlogger> TopKByScoreFiltered(
    const std::vector<double>& scores, size_t k,
    const std::function<bool(BloggerId)>& keep);

}  // namespace mass
