// MassEngine: the paper's Analyzer Module. Runs the full multi-facet
// pipeline over a corpus —
//   1. sentiment analysis of every comment (SF factor),
//   2. quality/novelty scoring of every post,
//   3. PageRank over the blogger link network (GL score),
//   4. per-post interest vectors iv(b_i, d_k, C_t) via a pluggable
//      InterestMiner (naive Bayes by default),
//   5. the damped fixed-point solution of the recursive influence system
//      Eq. 1-4, and
//   6. the per-domain influence vectors of Eq. 5 —
// and answers top-k queries for general and domain-specific influence.
#pragma once

#include <atomic>
#include <memory>
#include <string_view>
#include <vector>

#include "classify/interest_miner.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/analysis_snapshot.h"
#include "core/engine_options.h"
#include "core/mutation_result.h"
#include "core/solver_matrix.h"
#include "model/corpus.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/shard_coordinator.h"
#include "shard/shard_plan.h"
#include "shard/sharded_matrix.h"

namespace mass {

struct CorpusDelta;
struct AppliedDelta;

/// Everything the engine knows about its last run, in one snapshot: the
/// registry's counters/gauges/histograms, the solver's convergence trace
/// (per-iteration residual + damping on both the CSR and scalar paths),
/// and the pipeline stage spans of the most recent Analyze / Retune /
/// IngestDelta. This replaces the old SolveStats field-poking — read run
/// statistics here, nowhere else.
struct EngineObservability {
  obs::MetricsSnapshot metrics;
  obs::SolveTrace solve;
  std::vector<obs::TraceSpan> spans;  ///< stages of the last run
  std::string run;                    ///< "analyze", "retune", or "ingest"
};

/// The MASS analyzer. Construct over a corpus (indexes built), call
/// Analyze() once, then query.
class MassEngine {
 public:
  /// `corpus` must outlive the engine and have indexes built.
  explicit MassEngine(const Corpus* corpus, EngineOptions options = {});

  /// Mutable-corpus overload: identical behaviour, and additionally
  /// enables IngestDelta(), which appends to the corpus in place.
  explicit MassEngine(Corpus* corpus, EngineOptions options = {});

  /// Runs the pipeline. `miner` supplies iv(b_i, d_k, C_t); pass nullptr
  /// to use the posts' ground-truth domains as one-hot vectors (synthetic
  /// corpora only) — useful for isolating the scoring model from the
  /// classifier. `num_domains` fixes the domain-vector dimensionality.
  Status Analyze(const InterestMiner* miner, size_t num_domains);

  /// Re-runs the model under different options WITHOUT repeating the
  /// text-analysis stages (classification, sentiment word matching, copy
  /// detection) — those depend only on the corpus, not on the options.
  /// This is what the demo's parameter toolbar needs: changing α, β, the
  /// SF values, facet toggles, GL method, or recency takes milliseconds
  /// instead of a full re-analysis. Requires a prior successful Analyze().
  Status Retune(const EngineOptions& options);

  /// Folds one batch of new bloggers/posts/comments/links into a live
  /// analysis without re-running the full pipeline: the delta is applied
  /// to the corpus (model/corpus_delta id reconciliation), only the new
  /// documents are classified and scored, the compiled CSR matrix is
  /// extended in place, and the fixed point restarts from the previous
  /// influence vector (see EngineOptions::warm_start_ingest /
  /// incremental_matrix). GL link analysis reruns only when the delta
  /// changes the blogger set or the link graph. `miner` follows the same
  /// contract as Analyze() and must classify into the same domain count.
  ///
  /// Requires the mutable-corpus constructor and a prior Analyze() (an
  /// Analyze() over an empty corpus is fine — a stream can start from
  /// nothing). An all-duplicate delta is a no-op. After a successful
  /// return every accessor reflects the grown corpus.
  ///
  /// With EngineOptions::transactional_ingest (the default) the call is
  /// all-or-nothing: any failure past the corpus application rolls the
  /// corpus AND the engine state back to exactly the pre-ingest snapshot,
  /// so the engine keeps serving queries as if the delta never arrived.
  Status IngestDelta(const CorpusDelta& delta, const InterestMiner* miner);

  /// As above, and additionally reports what happened through the
  /// MutationResult shared with ExpireWindow (applied/rolled-back flags,
  /// entity counts, matrix nnz delta, warm-start iterations). `result` is
  /// filled on every return path, including failures; nullptr skips it.
  Status IngestDelta(const CorpusDelta& delta, const InterestMiner* miner,
                     MutationResult* result);

  /// The removal half of a sliding window: drops every post older than the
  /// window's cutoff (anchor − horizon, where the anchor is window.as_of
  /// or the corpus-newest timestamp), every comment on a dropped post, and
  /// every comment whose own timestamp aged out — bloggers and links stay.
  /// `window` becomes the engine's active EngineOptions::window, so
  /// subsequent solves weight the surviving corpus consistently.
  ///
  /// The compiled matrix shrinks in place (ShrinkSolverMatrix) when few
  /// rows are affected, or recompiles when the dirty fraction exceeds
  /// EngineOptions::expire_recompile_fraction; either way the fixed point
  /// restarts warm from the pre-expiry influence. Warm-vs-cold parity on
  /// the windowed corpus is ≤1e-9 (see tests/window_test.cc).
  ///
  /// Transactional like IngestDelta: with transactional_ingest, any
  /// mid-pipeline failure restores corpus + engine bitwise to the
  /// pre-expiry state and the prior snapshot stays published. Requires the
  /// mutable-corpus constructor and a prior Analyze(). Nothing aged out
  /// and an unchanged window = a no-op (result->applied stays false).
  Status ExpireWindow(const WindowSpec& window,
                      MutationResult* result = nullptr);

  // ---- the published snapshot (the read path) ----

  /// The immutable result of the last successful Analyze / Retune /
  /// IngestDelta, published by atomic shared_ptr swap. Readers pin it
  /// once (one atomic load) and then query without any lock, while the
  /// write path solves the next one on another thread; a transactional
  /// rollback republishes the prior snapshot, so readers can never
  /// observe a partially-applied delta. nullptr before the first
  /// successful Analyze(). See docs/serving.md.
  std::shared_ptr<const AnalysisSnapshot> CurrentSnapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Sequence of the most recently published snapshot (0 before the first
  /// publish). One relaxed load — this is the epoch counter snapshot
  /// leases poll on every query so the hot path never touches the
  /// shared_ptr control block; when it differs from the lease's cached
  /// sequence the lease re-pins via CurrentSnapshot(). A stale read here
  /// only delays a refresh by one check; it can never hand out a torn or
  /// rolled-back snapshot (rollbacks never publish).
  uint64_t PublishedSequence() const {
    return published_sequence_.load(std::memory_order_relaxed);
  }

  // ---- per-entity scores (valid after Analyze) ----
  //
  // Clamped: an out-of-range id returns 0.0 (or an empty vector) instead
  // of indexing unchecked. Serving paths should prefer the snapshot's
  // Result<T> accessors, which report the error instead of masking it.

  /// Inf(b_i), Eq. 1, mean-normalized over bloggers (mean = 1).
  double InfluenceOf(BloggerId b) const {
    return b < influence_.size() ? influence_[b] : 0.0;
  }

  /// GL(b_i): PageRank authority, mean-normalized.
  double GeneralLinksOf(BloggerId b) const {
    return b < gl_.size() ? gl_[b] : 0.0;
  }

  /// AP(b_i): accumulated post influence.
  double AccumulatedPostOf(BloggerId b) const {
    return b < ap_.size() ? ap_[b] : 0.0;
  }

  /// Inf(b_i, d_k), Eq. 4, for one post.
  double PostInfluenceOf(PostId p) const {
    return p < post_influence_.size() ? post_influence_[p] : 0.0;
  }

  /// QualityScore(b_i, d_k) for one post.
  double PostQualityOf(PostId p) const {
    return p < post_quality_.size() ? post_quality_[p] : 0.0;
  }

  /// iv(b_i, d_k, C_t) for one post (length num_domains, sums to 1);
  /// empty for an out-of-range id.
  const std::vector<double>& PostInterestsOf(PostId p) const {
    return p < post_interests_.size() ? post_interests_[p] : kEmptyVector;
  }

  /// SF(b_i, d_k, b_j) assigned to one comment.
  double CommentFactorOf(CommentId c) const {
    return c < comment_sf_.size() ? comment_sf_[c] : 0.0;
  }

  /// Inf(b_i, C_t), Eq. 5.
  double DomainInfluenceOf(BloggerId b, size_t domain) const {
    if (b >= domain_influence_.size()) return 0.0;
    const std::vector<double>& dv = domain_influence_[b];
    return domain < dv.size() ? dv[domain] : 0.0;
  }

  /// The full domain vector Inf(b_i, IV); empty for an out-of-range id.
  const std::vector<double>& DomainVectorOf(BloggerId b) const {
    return b < domain_influence_.size() ? domain_influence_[b] : kEmptyVector;
  }

  // ---- rankings ----

  /// Top-k bloggers by overall influence Inf(b_i).
  std::vector<ScoredBlogger> TopKGeneral(size_t k) const;

  /// Top-k bloggers in one domain by Inf(b_i, C_t).
  std::vector<ScoredBlogger> TopKDomain(size_t domain, size_t k) const;

  /// Top-k by the dot product Inf(b_i, IV) . weights — the Scenario-1
  /// advertisement ranking. `weights` has length num_domains.
  std::vector<ScoredBlogger> TopKWeighted(const std::vector<double>& weights,
                                          size_t k) const;

  // ---- introspection ----

  /// Point-in-time snapshot of the engine's metrics, solver convergence
  /// trace, and stage spans (see EngineObservability). Copies out of the
  /// registry/tracer, so the result stays stable while the engine runs on.
  EngineObservability Observability() const;

  /// The registry the engine records into — the one from
  /// EngineOptions::metrics, or the engine-owned default. Share it with a
  /// Crawler/DeltaStream to aggregate the whole pipeline in one snapshot.
  obs::MetricsRegistry* metrics() const { return metrics_; }

  const Corpus& corpus() const { return *corpus_; }
  const EngineOptions& options() const { return options_; }
  size_t num_domains() const { return num_domains_; }
  bool analyzed() const { return analyzed_; }

 private:
  // Target of the clamped vector accessors for out-of-range ids.
  static const std::vector<double> kEmptyVector;

  /// Resolves the registry (options_.metrics or an engine-owned one) and
  /// pre-fetches every handle the hot paths use.
  void InitObservability();
  /// Materializes an AnalysisSnapshot from the solved state and swaps it
  /// into snapshot_. Called at the end of every successful write-path run
  /// (`run` = "analyze" / "retune" / "ingest").
  void PublishSnapshot(std::string_view run);
  Status ComputeGeneralLinks();
  void ComputeQuality();
  void ComputeRecency();
  void ComputeSentiment();
  Status ComputeInterests(const InterestMiner* miner);
  /// Appends text-stage results (raw lengths, copy indicators, sentiment
  /// classes) for the entities added since the last solve.
  void ExtendTextCaches(size_t prior_posts, size_t prior_comments);
  /// Classifies only the posts added since the last solve.
  Status ExtendInterests(const InterestMiner* miner, size_t prior_posts);
  /// The cold-path solve (Analyze/Retune). Fallible since the sharded
  /// fixed point crossed a transport: a dead or silent worker surfaces as
  /// a typed Status (Unavailable / DeadlineExceeded) and the caller skips
  /// the publish, leaving the previous snapshot serving.
  Status SolveInfluence();
  /// The ingest-path solve: extends or recompiles the matrix, then
  /// iterates (warm-started per options_.warm_start_ingest). Aborted when
  /// the extended matrix would exceed options_.ingest_max_matrix_nnz.
  Status SolveInfluenceIncremental();
  /// The scoring pipeline IngestDelta runs after the corpus application.
  Status IngestAppliedDelta(const AppliedDelta& applied,
                            const InterestMiner* miner);
  /// The expiry pipeline ExpireWindow runs once the removal masks are
  /// known: compacts corpus + per-entity caches, rescores the survivors
  /// under the new window, shrinks or recompiles the matrix per `plan`,
  /// warm-solves, and publishes. `old_weight` is the pre-compaction
  /// SF·recency per comment (for detecting rows whose surviving comments
  /// re-weighted); `can_shrink` gates the in-place path.
  Status ExpireApplied(const std::vector<uint8_t>& drop_post,
                       const std::vector<uint8_t>& drop_comment,
                       const std::vector<double>& old_weight, bool can_shrink,
                       ShrinkPlan* plan);
  /// The expiry-path solve: ShrinkSolverMatrix when the dirty-row fraction
  /// is under options_.expire_recompile_fraction, full recompile above it,
  /// then the warm fixed point (sharded or not).
  Status SolveInfluenceExpire(const ShrinkPlan& plan, bool can_shrink);
  /// True when the temporal weighting survives corpus growth/shrinkage
  /// unchanged — an explicit window.as_of pins the anchor; corpus-relative
  /// decay or window re-anchors on every mutation. Gates the in-place
  /// extend/shrink paths (an unstable anchor forces a recompile).
  bool WeightsAnchorStable() const;
  /// Newest post/comment timestamp in the corpus (0 when empty) — the
  /// corpus-relative window anchor.
  int64_t NewestTimestamp() const;
  /// Mirrors a MutationResult into the engine.mutation.* metrics.
  void RecordMutationMetrics(const MutationResult& result);
  void SolveInfluenceReference(bool warm);
  /// Runs the fixed point against the live matrix_. `warm` keeps the
  /// previous influence vector as the initial iterate (new bloggers join
  /// at the normalized mean, 1.0).
  void IterateCompiled(bool warm);
  /// True when this solve partitions: compiled solver with
  /// options_.num_shards > 1 requested.
  bool UseShardedSolve() const;
  /// Builds shard_plan_ + sharded_matrix_ from the live compiled matrix_
  /// (which stays valid — it still feeds the per-post reconstruction and
  /// the ingest extend path), then ships every worker its slice through
  /// the shard runtime. Fails typed when a worker cannot be loaded;
  /// sharded_valid_ stays false in that case.
  Status BuildShardedSystem();
  /// The sharded fixed point, now driven through the ShardCoordinator:
  /// identical arithmetic to IterateCompiled with the SpMV fanned out to
  /// K ShardWorkers over the configured transport. Bit-identical output
  /// for any shard count and either transport.
  Status IterateSharded(bool warm);
  /// Lazily builds the ShardCoordinator under the current options. The
  /// runtime is dropped on Retune/InitObservability (the transport,
  /// deadline, registry, or fault plan may have changed) and rebuilt here.
  Status EnsureShardRuntime();
  /// Adapts options_.fault_plan's kTransport site into the coordinator's
  /// per-message hook (drop/truncate/kill decisions + in-hook delays).
  shard::TransportFaultHook MakeTransportFaultHook();
  /// Final per-post pass shared by the compiled paths: Inf(b_i, d_k) from
  /// the iterate that fed the last SpMV, via matrix_'s post mirror.
  void ReconstructPostInfluence(const std::vector<double>& last_x);
  void ComputeDomainVectors();
  /// Snapshots the corpus shape a successful solve ran against; Retune()
  /// and IngestDelta() refuse to run when the corpus changed underneath
  /// them (stale caches would silently corrupt scores).
  void RecordSolvedShape();
  bool SolvedShapeCurrent() const;

  /// Everything a failed transactional ingest must restore: every solved
  /// score surface, the cached text stages, the GL cache, the compiled
  /// matrix, and the solved-shape key. The corpus itself is rolled back
  /// separately (Corpus::RollbackTo with the AppliedDelta's mark).
  struct IngestSnapshot {
    obs::SolveTrace solve_trace;
    int last_full_solve_iterations = 0;
    size_t solved_bloggers = 0;
    size_t solved_posts = 0;
    size_t solved_comments = 0;
    size_t solved_links = 0;
    bool gl_cache_valid = false;
    GlMethod gl_cached_method = GlMethod::kPageRank;
    PageRankOptions gl_cached_pagerank;
    int gl_cached_iterations = 0;
    size_t gl_cached_bloggers = 0;
    size_t gl_cached_links = 0;
    SolverMatrix matrix;
    bool matrix_valid = false;
    shard::ShardPlan shard_plan;
    shard::ShardedSolverMatrix sharded_matrix;
    bool sharded_valid = false;
    std::vector<double> gl;
    std::vector<double> ap;
    std::vector<double> influence;
    std::vector<double> post_quality;
    std::vector<double> post_influence;
    std::vector<double> post_recency;
    std::vector<double> comment_recency;
    std::vector<double> comment_sf;
    std::vector<double> post_length_raw;
    std::vector<size_t> post_copy_indicators;
    std::vector<int> comment_sentiment;
    std::vector<std::vector<double>> post_interests;
    std::vector<std::vector<double>> domain_influence;
  };
  IngestSnapshot CaptureIngestSnapshot() const;
  void RestoreIngestSnapshot(IngestSnapshot&& snapshot);

  int SolverThreadCount() const;
  /// Lazily creates (and reuses across Retune) the solver's worker pool;
  /// nullptr when one thread is requested.
  ThreadPool* SolverPool();

  const Corpus* corpus_;
  Corpus* mutable_corpus_ = nullptr;  // set by the mutable ctor only
  EngineOptions options_;
  size_t num_domains_ = 0;
  bool analyzed_ = false;
  std::unique_ptr<ThreadPool> solver_pool_;

  // Observability: the registry (engine-owned unless EngineOptions::metrics
  // was set), the per-run stage tracer, the solver convergence trace, and
  // pre-resolved metric handles so the hot paths never touch the registry
  // map. Handles are null-cheap when the registry is disabled.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::StageTracer tracer_;
  obs::SolveTrace solve_trace_;
  obs::Counter analyze_runs_;
  obs::Counter retune_runs_;
  obs::Counter ingest_runs_;
  obs::Counter ingest_rollbacks_;
  obs::Counter expire_runs_;
  obs::Counter expire_rollbacks_;
  // engine.mutation.*: the last MutationResult, mirrored (see
  // RecordMutationMetrics) — counters for entity flow, gauges for the
  // point-in-time matrix size / solve cost.
  obs::Counter mutation_added_posts_;
  obs::Counter mutation_added_comments_;
  obs::Counter mutation_removed_posts_;
  obs::Counter mutation_removed_comments_;
  obs::Gauge mutation_matrix_nnz_;
  obs::Gauge mutation_nnz_delta_;
  obs::Gauge mutation_warm_iterations_;
  obs::Counter solve_iterations_total_;
  obs::Counter topk_queries_;
  obs::Histogram topk_us_;
  obs::Gauge warm_saved_gauge_;
  obs::Counter snapshot_publishes_;
  obs::Histogram snapshot_publish_us_;
  // Sharded-solve instrumentation: one exchange_us record per round
  // (summed over shards), one spmv_us record per shard per solve (its
  // total across rounds), plus the shard count / halo volume gauges.
  obs::Histogram shard_exchange_us_;
  obs::Histogram shard_spmv_us_;
  obs::Gauge shard_count_gauge_;
  obs::Gauge shard_halo_gauge_;
  // Fault injection (EngineOptions::fault_plan): per-site operation
  // counters feeding the deterministic draws, plus the counters that make
  // injected faults observable. The op counters are only touched on the
  // single write thread.
  obs::Counter fault_ingest_failures_;
  obs::Counter fault_publish_stalls_;
  obs::Counter fault_spmv_slowdowns_;
  obs::Counter fault_transport_faults_;
  uint64_t fault_ingest_ops_ = 0;
  uint64_t fault_publish_ops_ = 0;
  uint64_t fault_spmv_ops_ = 0;

  // Iteration count of the last cold (full) solve; the baseline for the
  // engine.warm_start_iterations_saved gauge.
  int last_full_solve_iterations_ = 0;

  // Corpus shape at the last successful solve (see RecordSolvedShape).
  size_t solved_bloggers_ = 0;
  size_t solved_posts_ = 0;
  size_t solved_comments_ = 0;
  size_t solved_links_ = 0;

  // GL(b) is corpus-derived and depends only on the corpus shape plus
  // (gl_method, pagerank options); Retune() and blogger/link-free ingests
  // reuse the cached vector instead of re-running link analysis.
  bool gl_cache_valid_ = false;
  GlMethod gl_cached_method_ = GlMethod::kPageRank;
  PageRankOptions gl_cached_pagerank_;
  int gl_cached_iterations_ = 0;
  size_t gl_cached_bloggers_ = 0;
  size_t gl_cached_links_ = 0;

  // Live compiled matrix; valid_ only between a compiled solve and the
  // next corpus/options change that invalidates it. IngestDelta extends
  // it in place instead of recompiling.
  SolverMatrix matrix_;
  bool matrix_valid_ = false;

  // Sharded view of matrix_ (options_.num_shards > 1): the plan that
  // assigned rows and the partitioned per-shard CSR slices. Rebuilt from
  // the (extended or recompiled) global matrix every sharded solve —
  // partitioning is one O(nnz) split, cheap next to the solve itself.
  // shard_plan_.owner also feeds the composite snapshot's per-shard
  // rankings at publish time.
  shard::ShardPlan shard_plan_;
  shard::ShardedSolverMatrix sharded_matrix_;
  bool sharded_valid_ = false;

  // The shard runtime: coordinator + transport + worker fleet, kept alive
  // across solves (slices are reshipped every solve; worker processes /
  // threads are not respawned unless one died or the options changed).
  // Reset by InitObservability so a Retune that swaps the transport,
  // registry, or fault plan rebuilds it on the next sharded solve.
  std::unique_ptr<shard::ShardCoordinator> shard_runtime_;

  std::vector<double> gl_;              // [blogger]
  std::vector<double> ap_;              // [blogger]
  std::vector<double> influence_;       // [blogger]
  std::vector<double> post_quality_;    // [post]
  std::vector<double> post_influence_;  // [post]
  std::vector<double> post_recency_;    // [post], 1.0 when recency is off
  std::vector<double> comment_recency_; // [comment]
  std::vector<double> comment_sf_;      // [comment]
  // Option-independent text-analysis results cached for Retune() and
  // extended (not recomputed) by IngestDelta. Lengths are cached raw —
  // the mean-length normalization is corpus-dependent and re-derived by
  // ComputeQuality() every solve.
  std::vector<double> post_length_raw_;       // [post] PostLength(p)
  std::vector<size_t> post_copy_indicators_;  // [post] copy-lexicon hits
  std::vector<int> comment_sentiment_;        // [comment] Sentiment as int
  std::vector<std::vector<double>> post_interests_;    // [post][domain]
  std::vector<std::vector<double>> domain_influence_;  // [blogger][domain]

  // The published snapshot (read path). Writes happen only on the
  // engine's (single) write thread at the end of a successful run;
  // readers load concurrently from any thread.
  std::atomic<std::shared_ptr<const AnalysisSnapshot>> snapshot_{nullptr};
  uint64_t snapshot_sequence_ = 0;
  // Mirror of the published snapshot's sequence, stored after the swap so
  // a lease that observes the new value and then re-pins gets a snapshot
  // at least that new (see PublishedSequence()).
  std::atomic<uint64_t> published_sequence_{0};
};

}  // namespace mass
