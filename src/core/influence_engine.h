// MassEngine: the paper's Analyzer Module. Runs the full multi-facet
// pipeline over a corpus —
//   1. sentiment analysis of every comment (SF factor),
//   2. quality/novelty scoring of every post,
//   3. PageRank over the blogger link network (GL score),
//   4. per-post interest vectors iv(b_i, d_k, C_t) via a pluggable
//      InterestMiner (naive Bayes by default),
//   5. the damped fixed-point solution of the recursive influence system
//      Eq. 1-4, and
//   6. the per-domain influence vectors of Eq. 5 —
// and answers top-k queries for general and domain-specific influence.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "classify/interest_miner.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/engine_options.h"
#include "model/corpus.h"

namespace mass {

/// One ranked blogger.
struct ScoredBlogger {
  BloggerId id = kInvalidBlogger;
  double score = 0.0;
};

/// Solver diagnostics.
struct SolveStats {
  int iterations = 0;
  double final_delta = 0.0;
  bool converged = false;
  int pagerank_iterations = 0;
  /// Wall time of the fixed-point solve alone (for the compiled path this
  /// includes matrix compilation), excluding link analysis, text stages,
  /// and domain-vector assembly.
  double solve_seconds = 0.0;
};

/// The MASS analyzer. Construct over a corpus (indexes built), call
/// Analyze() once, then query.
class MassEngine {
 public:
  /// `corpus` must outlive the engine and have indexes built.
  explicit MassEngine(const Corpus* corpus, EngineOptions options = {});

  /// Runs the pipeline. `miner` supplies iv(b_i, d_k, C_t); pass nullptr
  /// to use the posts' ground-truth domains as one-hot vectors (synthetic
  /// corpora only) — useful for isolating the scoring model from the
  /// classifier. `num_domains` fixes the domain-vector dimensionality.
  Status Analyze(const InterestMiner* miner, size_t num_domains);

  /// Re-runs the model under different options WITHOUT repeating the
  /// text-analysis stages (classification, sentiment word matching, copy
  /// detection) — those depend only on the corpus, not on the options.
  /// This is what the demo's parameter toolbar needs: changing α, β, the
  /// SF values, facet toggles, GL method, or recency takes milliseconds
  /// instead of a full re-analysis. Requires a prior successful Analyze().
  Status Retune(const EngineOptions& options);

  // ---- per-entity scores (valid after Analyze) ----

  /// Inf(b_i), Eq. 1, mean-normalized over bloggers (mean = 1).
  double InfluenceOf(BloggerId b) const { return influence_[b]; }

  /// GL(b_i): PageRank authority, mean-normalized.
  double GeneralLinksOf(BloggerId b) const { return gl_[b]; }

  /// AP(b_i): accumulated post influence.
  double AccumulatedPostOf(BloggerId b) const { return ap_[b]; }

  /// Inf(b_i, d_k), Eq. 4, for one post.
  double PostInfluenceOf(PostId p) const { return post_influence_[p]; }

  /// QualityScore(b_i, d_k) for one post.
  double PostQualityOf(PostId p) const { return post_quality_[p]; }

  /// iv(b_i, d_k, C_t) for one post (length num_domains, sums to 1).
  const std::vector<double>& PostInterestsOf(PostId p) const {
    return post_interests_[p];
  }

  /// SF(b_i, d_k, b_j) assigned to one comment.
  double CommentFactorOf(CommentId c) const { return comment_sf_[c]; }

  /// Inf(b_i, C_t), Eq. 5.
  double DomainInfluenceOf(BloggerId b, size_t domain) const {
    return domain_influence_[b][domain];
  }

  /// The full domain vector Inf(b_i, IV).
  const std::vector<double>& DomainVectorOf(BloggerId b) const {
    return domain_influence_[b];
  }

  // ---- rankings ----

  /// Top-k bloggers by overall influence Inf(b_i).
  std::vector<ScoredBlogger> TopKGeneral(size_t k) const;

  /// Top-k bloggers in one domain by Inf(b_i, C_t).
  std::vector<ScoredBlogger> TopKDomain(size_t domain, size_t k) const;

  /// Top-k by the dot product Inf(b_i, IV) . weights — the Scenario-1
  /// advertisement ranking. `weights` has length num_domains.
  std::vector<ScoredBlogger> TopKWeighted(const std::vector<double>& weights,
                                          size_t k) const;

  const SolveStats& stats() const { return stats_; }
  const Corpus& corpus() const { return *corpus_; }
  const EngineOptions& options() const { return options_; }
  size_t num_domains() const { return num_domains_; }
  bool analyzed() const { return analyzed_; }

 private:
  Status ComputeGeneralLinks();
  void ComputeQuality();
  void ComputeRecency();
  void ComputeSentiment();
  Status ComputeInterests(const InterestMiner* miner);
  void SolveInfluence();
  void SolveInfluenceReference();
  void SolveInfluenceCompiled();
  void ComputeDomainVectors();
  int SolverThreadCount() const;
  /// Lazily creates (and reuses across Retune) the solver's worker pool;
  /// nullptr when one thread is requested.
  ThreadPool* SolverPool();

  const Corpus* corpus_;
  EngineOptions options_;
  size_t num_domains_ = 0;
  bool analyzed_ = false;
  SolveStats stats_;
  std::unique_ptr<ThreadPool> solver_pool_;

  // GL(b) is corpus-derived and depends only on (gl_method, pagerank
  // options); Retune() reuses the cached vector when those are unchanged
  // instead of re-running link analysis.
  bool gl_cache_valid_ = false;
  GlMethod gl_cached_method_ = GlMethod::kPageRank;
  PageRankOptions gl_cached_pagerank_;
  int gl_cached_iterations_ = 0;

  std::vector<double> gl_;              // [blogger]
  std::vector<double> ap_;              // [blogger]
  std::vector<double> influence_;       // [blogger]
  std::vector<double> post_quality_;    // [post]
  std::vector<double> post_influence_;  // [post]
  std::vector<double> post_recency_;    // [post], 1.0 when recency is off
  std::vector<double> comment_recency_; // [comment]
  std::vector<double> comment_sf_;      // [comment]
  // Option-independent text-analysis results cached for Retune():
  std::vector<double> post_length_norm_;      // [post] length / mean length
  std::vector<size_t> post_copy_indicators_;  // [post] copy-lexicon hits
  std::vector<int> comment_sentiment_;        // [comment] Sentiment as int
  std::vector<std::vector<double>> post_interests_;    // [post][domain]
  std::vector<std::vector<double>> domain_influence_;  // [blogger][domain]
};

}  // namespace mass
