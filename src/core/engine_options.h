// All tunables of the MASS influence model in one place. The demo paper
// exposes these through a "toolbar to set personalized parameters for
// modeling general influence and domain influence" (§IV); the facet
// toggles additionally drive the ablation bench (A3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/backoff.h"
#include "linkanalysis/pagerank.h"
#include "model/entities.h"
#include "runtime/transport.h"
#include "sentiment/sentiment_analyzer.h"

namespace mass::obs {
class MetricsRegistry;
}  // namespace mass::obs

namespace mass {

struct EngineFaultPlan;

/// How the General-Links authority GL(b_i) of Eq. 1 is computed. The
/// paper cites both PageRank [3] and HITS [4] as candidate link-authority
/// measures; a raw in-link count is the naive baseline.
enum class GlMethod {
  kPageRank,     ///< default; the paper's "similar to ... PageRank"
  kHitsAuthority,///< Kleinberg HITS authority score
  kInlinkCount,  ///< degree centrality (naive baseline)
};

/// Parameters of Eq. 1-5 plus solver controls.
struct EngineOptions {
  /// Eq. 1: weight of Accumulated-Post influence vs General-Links
  /// authority. Paper default 0.5.
  double alpha = 0.5;

  /// Eq. 2: weight of a post's quality score vs its comment score.
  /// Paper default 0.6 "according to empirical study".
  double beta = 0.6;

  /// SF values (paper: positive 1.0, negative 0.1, neutral 0.5).
  SentimentFactorOptions sentiment;

  /// Novelty assigned to carbon-copy posts; the paper uses "a value
  /// between 0 and 0.1". Original posts get 1.0.
  double novelty_copy_value = 0.1;

  // ---- facet toggles (ablation bench A3) ----
  /// Citation facet: weight each comment by the commenter's influence.
  /// When off, every commenter counts 1 (the WSDM'08 style count model).
  bool use_citation = true;
  /// Attitude facet: scale comments by SF. When off, SF = 1 for all.
  bool use_attitude = true;
  /// Novelty facet: penalize carbon copies. When off, novelty = 1 always.
  bool use_novelty = true;
  /// Normalize each comment by the commenter's total comment count TC.
  bool use_tc_normalization = true;

  /// General-Links computation (PageRank over the blogger link graph).
  GlMethod gl_method = GlMethod::kPageRank;
  PageRankOptions pagerank;

  /// Optional recency weighting (an extension beyond the paper): each
  /// post's and comment's contribution decays exponentially with its age,
  /// with this half-life in days. 0 disables recency weighting (the
  /// paper's behaviour). Ages are measured from the newest timestamp in
  /// the corpus, so the weighting is corpus-relative.
  double recency_half_life_days = 0.0;

  /// Temporal window applied at solve time: posts and comments outside
  /// [anchor - horizon_secs, anchor] contribute zero weight to Quality and
  /// CommentScore, where the anchor is `window.as_of` (absolute) or the
  /// corpus-newest timestamp when 0. Decay (recency_half_life_days) and
  /// ages are measured from the same anchor, so an explicit `as_of` makes
  /// the weighting reproducible across ingests. Default = no window.
  WindowSpec window;

  /// Worker threads for the per-post classification and per-comment
  /// sentiment stages (embarrassingly parallel). 1 = run inline.
  int analyzer_threads = 1;

  // ---- fixed-point solver (Eq. 1-4 are recursive through Inf(b_j)) ----
  /// Solve via the compiled path: the loop-invariant comment factors
  /// SF·recency/TC are folded once into a blogger-level CSR matrix and
  /// each iteration becomes a parallel SpMV (see core/solver_matrix.h).
  /// The per-post reference solver remains as the fallback and as the
  /// parity oracle for tests.
  bool use_compiled_solver = true;
  /// Worker threads for the compiled solver's per-iteration SpMV
  /// (0 = follow analyzer_threads). Scores are bit-identical for every
  /// thread count: rows are summed serially and the only cross-row
  /// reduction is an order-independent max.
  int solver_threads = 0;
  int max_iterations = 100;
  /// Convergence: max per-blogger absolute change of the mean-normalized
  /// influence below this ends iteration.
  double tolerance = 1e-9;
  /// Partition the compiled solve into this many shards (src/shard): the
  /// CSR system splits by blogger, each round runs K shard-local SpMVs
  /// with a boundary-influence exchange, and the published snapshot keeps
  /// per-shard rankings merged lazily at query time. 0 or 1 = the single-
  /// matrix solve. Scores and rankings are bit-identical for every shard
  /// count (see shard/sharded_matrix.h); requires use_compiled_solver.
  size_t num_shards = 0;
  /// Pluggable shard key: maps (blogger, num_shards) to the owning shard.
  /// Null = the built-in multiplicative hash (shard::HashShardKey); a
  /// community-aware key from a graph clustering drops in here. Must be a
  /// pure function of its arguments. Not serialized by options_xml.
  std::function<uint32_t(BloggerId, size_t)> shard_key;
  /// Transport carrying the sharded solve's coordinator↔worker exchanges
  /// (runtime/transport.h): kInProc (default — worker threads inside this
  /// process, lock-free queues) or kPipe (one forked worker process per
  /// shard over socketpairs). Scores are bit-identical either way: the
  /// transport moves raw double bit patterns, the arithmetic is fixed.
  runtime::TransportKind shard_transport = runtime::TransportKind::kInProc;
  /// Per-message send/recv deadline for shard exchanges, in microseconds;
  /// 0 waits forever. (With transport fault injection active an unset
  /// deadline falls back to 1s so injected drops cannot hang a solve.)
  int64_t shard_message_deadline_micros = 0;
  /// Retry budget and pacing for one shard exchange: after a deadline the
  /// request is resent under a fresh sequence number (IterateRound is a
  /// pure function of x, so a resend is idempotent and late replies are
  /// discarded). A dead worker is never retried — the solve fails with
  /// Unavailable and the next sharded solve restarts the fleet. Only
  /// max_retries round-trips through options_xml (shard_message_retries).
  BackoffPolicy shard_retry;
  /// Fraction of the previous iterate blended into the new one (0 = pure
  /// Jacobi). Useful if a corpus produces oscillation.
  double damping = 0.0;

  // ---- incremental ingestion (MassEngine::IngestDelta) ----
  /// Start the delta solve from the previous influence vector (new
  /// bloggers join at the normalized mean, 1.0) instead of the quality-
  /// only cold iterate. Small deltas barely move the fixed point, so the
  /// warm start converges in a fraction of the cold iteration count.
  bool warm_start_ingest = true;
  /// Extend (on ingest) or shrink (on expiry) the compiled CSR matrix in
  /// place — append/compact rows, splice or drop column entries in the
  /// sorted rows, rescale the columns whose TC normalization changed —
  /// instead of recompiling from scratch. Falls back to a full recompile
  /// when the weighting anchor is unstable (corpus-relative decay or
  /// window: the newest timestamp moves, re-decaying every existing
  /// weight; an explicit window.as_of keeps it stable) or when no
  /// compiled matrix is live.
  bool incremental_matrix = true;
  /// ExpireWindow's shrink-vs-recompile heuristic: recompile the matrix
  /// from scratch when more than this fraction of CSR rows would need a
  /// rebuild (authors who lost comments or whose surviving comments'
  /// weights changed); below it, ShrinkSolverMatrix compacts in place.
  double expire_recompile_fraction = 0.35;
  /// Make IngestDelta all-or-nothing: snapshot the engine state after the
  /// delta is applied, and on any downstream failure (classification,
  /// matrix extension, resource guard) roll both the corpus and the engine
  /// back to the exact pre-ingest state. Off = the PR-2 behaviour where a
  /// failed ingest leaves the engine needing a fresh Analyze().
  bool transactional_ingest = true;
  /// Resource guard for the ingest path: refuse (Aborted) a delta whose
  /// application would grow the compiled matrix beyond this many stored
  /// entries. 0 = unlimited. With transactional_ingest this doubles as a
  /// deterministic injection point for matrix-extension failure in tests.
  size_t ingest_max_matrix_nnz = 0;

  // ---- observability (src/obs) ----
  /// Registry receiving the engine's counters, gauges, and stage-duration
  /// histograms. Null (the default) makes the engine create and own an
  /// enabled registry, readable through MassEngine::Observability(). Pass
  /// obs::MetricsRegistry::Null() to disable instrumentation entirely, or
  /// an external registry to aggregate several components (crawler,
  /// streams, engines) into one snapshot. Must outlive the engine.
  obs::MetricsRegistry* metrics = nullptr;

  // ---- fault injection (src/core/engine_fault.h) ----
  /// Scripted write-path fault schedule: deterministic ingest failures,
  /// publish stalls, and SpMV slowdowns for chaos/soak testing. Null (the
  /// default) injects nothing and costs one pointer test per hook site.
  /// Like `metrics`, never serialized by options_xml; must outlive the
  /// engine.
  const EngineFaultPlan* fault_plan = nullptr;
};

}  // namespace mass
