#include "simulate/soak.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/influence_engine.h"
#include "crawler/delta_stream.h"
#include "model/corpus.h"
#include "obs/metrics.h"

namespace mass::simulate {
namespace {

// ---- determinism witnesses (FNV-1a 64) ----

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(uint64_t* h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashU64(uint64_t* h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }

void HashDouble(uint64_t* h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  HashU64(h, bits);
}

void HashString(uint64_t* h, const std::string& s) {
  HashU64(h, s.size());
  HashBytes(h, s.data(), s.size());
}

uint64_t DigestCorpus(const Corpus& corpus) {
  uint64_t h = kFnvOffset;
  HashU64(&h, corpus.num_bloggers());
  HashU64(&h, corpus.num_posts());
  HashU64(&h, corpus.num_comments());
  HashU64(&h, corpus.num_links());
  for (const Blogger& b : corpus.bloggers()) HashString(&h, b.url);
  for (const Post& p : corpus.posts()) {
    HashU64(&h, static_cast<uint64_t>(p.author));
    HashU64(&h, static_cast<uint64_t>(p.timestamp));
    HashU64(&h, static_cast<uint64_t>(p.true_domain));
    HashString(&h, p.title);
  }
  for (const Comment& c : corpus.comments()) {
    HashU64(&h, static_cast<uint64_t>(c.post));
    HashU64(&h, static_cast<uint64_t>(c.timestamp));
  }
  return h;
}

uint64_t DigestInfluence(const AnalysisSnapshot& snap) {
  uint64_t h = kFnvOffset;
  HashU64(&h, snap.num_bloggers());
  for (double v : snap.influence) HashDouble(&h, v);
  return h;
}

// ---- reader fleet ----

/// Typed-outcome tallies one reader accumulated; summed after join.
struct ReaderCounts {
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline = 0;
  uint64_t unavailable = 0;
  uint64_t failed_precondition = 0;
  uint64_t violations = 0;
};

/// A ranking is "plausible" when it is sorted by non-increasing finite
/// score with valid ids — the shape any honest snapshot answer has. A
/// response that is neither plausible nor a typed degradation status is
/// the "wrong answer" the soak invariant forbids.
bool PlausibleRanking(const std::vector<ScoredBlogger>& ranking) {
  double prev = std::numeric_limits<double>::infinity();
  for (const ScoredBlogger& s : ranking) {
    if (s.id == kInvalidBlogger) return false;
    if (!std::isfinite(s.score) || s.score > prev + 1e-12) return false;
    prev = s.score;
  }
  return true;
}

/// Classifies one single-ranking response into the tallies.
void CountRanking(const Result<std::vector<ScoredBlogger>>& r,
                  ReaderCounts* counts) {
  if (r.ok()) {
    if (PlausibleRanking(*r)) {
      ++counts->ok;
    } else {
      ++counts->violations;
    }
    return;
  }
  const Status& s = r.status();
  if (s.IsResourceExhausted()) {
    ++counts->shed;
  } else if (s.IsDeadlineExceeded()) {
    ++counts->deadline;
  } else if (s.IsUnavailable()) {
    ++counts->unavailable;
  } else if (s.IsFailedPrecondition()) {
    ++counts->failed_precondition;
  } else {
    ++counts->violations;
  }
}

/// One reader thread: replays the query mix until stopped.
void ReaderLoop(const QueryService* service, const SoakOptions& options,
                uint64_t seed, const std::atomic<bool>* stop,
                ReaderCounts* counts) {
  Rng rng(seed);
  size_t num_domains = options.world.num_domains;
  while (!stop->load(std::memory_order_acquire)) {
    uint64_t draw = rng.NextUint64(100);
    if (draw < 40) {
      // Zipfian domain popularity: a few hot domains take most queries.
      size_t domain = rng.NextZipf(num_domains, options.zipf_exponent);
      CountRanking(service->TopByDomain(domain, 10), counts);
    } else if (draw < 60) {
      CountRanking(service->TopGeneral(10), counts);
    } else if (draw < 75) {
      // Ad burst: a batch of interest vectors through the Eq. 5 path.
      std::vector<std::vector<double>> ads(4);
      for (auto& ad : ads) {
        ad.resize(num_domains);
        for (double& w : ad) w = rng.NextDouble();
      }
      auto r = service->MatchAdsBatch(ads, 10);
      if (r.ok()) {
        bool plausible = true;
        for (const auto& ranking : *r) plausible &= PlausibleRanking(ranking);
        plausible ? ++counts->ok : ++counts->violations;
      } else {
        CountRanking(Result<std::vector<ScoredBlogger>>(r.status()), counts);
      }
    } else if (draw < 90) {
      // Mixed consistent batch through the typed envelope, half of it
      // windowed — exercises the temporal query path under churn.
      WindowSpec window;
      window.horizon_secs = 6 * 3600;
      std::vector<QueryRequest> batch;
      batch.push_back(QueryRequest::TopGeneral(5));
      batch.push_back(QueryRequest::TopByDomain(
                          rng.NextZipf(num_domains, options.zipf_exponent), 5)
                          .Within(window));
      std::vector<double> ad(num_domains);
      for (double& w : ad) w = rng.NextDouble();
      batch.push_back(QueryRequest::MatchAd(std::move(ad), 5).Within(window));
      auto r = service->Run(batch);
      if (r.ok()) {
        for (const QueryResponse& item : *r) {
          if (item.status.ok()) {
            // Windowed slots may legitimately rank nobody (everything
            // aged out), so only the structural invariants apply.
            PlausibleRanking(item.ranking) ? ++counts->ok
                                           : ++counts->violations;
          } else if (item.status.IsDeadlineExceeded()) {
            ++counts->deadline;
          } else {
            ++counts->violations;  // readers only send valid queries
          }
        }
      } else {
        CountRanking(Result<std::vector<ScoredBlogger>>(r.status()), counts);
      }
    } else {
      // Trend probe: exercises the analytics surface under churn.
      // InvalidArgument is a correct typed answer here — the first
      // published snapshot covers an EMPTY corpus (Analyze before any
      // crawl), and trends over zero posts are undefined, not wrong.
      auto r = service->Trends(12);
      if (r.ok() || r.status().IsInvalidArgument()) {
        ++counts->ok;
      } else {
        CountRanking(Result<std::vector<ScoredBlogger>>(r.status()), counts);
      }
    }
    if (options.reader_pause_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options.reader_pause_micros));
    }
  }
  QueryService::ReleaseThreadLease();
}

/// Streams `urls` from `host` into the engine, applying the poison fault
/// and the rollback-leak check around every attempt.
struct IngestStats {
  size_t deltas_ingested = 0;
  size_t ingest_failures = 0;
  size_t poisoned = 0;
  size_t poison_rejected = 0;
  size_t poison_accepted = 0;
  size_t dropped = 0;
  size_t rollback_leaks = 0;
  size_t pages = 0;
  size_t fetch_failures = 0;
};

Status IngestUrls(BlogHost* host, const std::vector<std::string>& urls,
                  const EngineFaultPlan& faults, const SoakOptions& options,
                  MassEngine* engine, obs::MetricsRegistry* metrics,
                  uint64_t* poison_op, IngestStats* stats) {
  DeltaStreamOptions sopts;
  sopts.batch_pages = options.batch_pages;
  sopts.max_retries = 2;
  // Tight pacing and no breaker: the soak injects failures on purpose and
  // wants throughput, not politeness; breaker cooldowns are wall-clock
  // and would make the run timing-dependent.
  sopts.backoff.initial_delay_micros = 20;
  sopts.backoff.max_delay_micros = 200;
  sopts.breaker.enabled = false;
  sopts.backoff_seed = options.world.seed;
  sopts.metrics = metrics;
  DeltaStream stream(host, urls, sopts);
  while (!stream.done()) {
    MASS_ASSIGN_OR_RETURN(CorpusDelta delta, stream.Next());
    if (delta.additions.num_bloggers() == 0) break;  // exhausted on failures
    // First attempt may carry the poison; retries always use the clean
    // delta (a real pipeline would re-fetch, which un-poisons too).
    CorpusDelta attempt_delta = delta;
    bool poisoned = MaybePoisonDelta(faults, (*poison_op)++, &attempt_delta);
    if (poisoned) ++stats->poisoned;
    bool applied = false;
    for (int attempt = 0; attempt < std::max(options.max_ingest_attempts, 1);
         ++attempt) {
      const CorpusDelta& d = (attempt == 0) ? attempt_delta : delta;
      std::shared_ptr<const AnalysisSnapshot> before =
          engine->CurrentSnapshot();
      Status s = engine->IngestDelta(d, nullptr);
      if (s.ok()) {
        if (attempt == 0 && poisoned) ++stats->poison_accepted;
        ++stats->deltas_ingested;
        applied = true;
        break;
      }
      ++stats->ingest_failures;
      if (attempt == 0 && poisoned && s.IsFailedPrecondition()) {
        ++stats->poison_rejected;
      }
      // The rollback-leak invariant: a failed ingest must leave the
      // published snapshot pointer-identical.
      if (engine->CurrentSnapshot().get() != before.get()) {
        ++stats->rollback_leaks;
      }
    }
    if (!applied) ++stats->dropped;
  }
  stats->pages += stream.pages_emitted();
  stats->fetch_failures += stream.fetch_failures();
  return Status::OK();
}

}  // namespace

Result<SoakReport> RunSoak(const SoakOptions& options) {
  if (options.hours <= 0) {
    return Status::InvalidArgument("soak needs a positive hour horizon");
  }
  if (options.world.num_agents == 0) {
    return Status::InvalidArgument("soak needs at least one agent");
  }
  const int cadence = std::max(options.crawl_every_hours, 1);

  World world(options.world);
  WorldHost clean_host(&world);
  FaultInjectingHost faulty_host(&clean_host, options.crawl_faults);

  // The engine reads the plan through a pointer on every draw, so zeroing
  // this local copy later turns the faults off for the final sweep (the
  // ingest thread is the only consumer).
  EngineFaultPlan engine_faults = options.engine_faults;

  obs::MetricsRegistry metrics;
  Corpus grown;
  grown.BuildIndexes();
  EngineOptions eopts = options.engine;
  eopts.metrics = &metrics;
  eopts.fault_plan = &engine_faults;
  MassEngine engine(&grown, eopts);
  MASS_RETURN_IF_ERROR(engine.Analyze(nullptr, world.num_domains()));

  QueryServiceOptions qopts = options.serve;
  qopts.metrics = &metrics;
  QueryService service(&engine, qopts);

  // Reader fleet runs for the whole soak, concurrent with every ingest,
  // publish stall, and rollback.
  std::atomic<bool> stop{false};
  std::vector<ReaderCounts> counts(options.reader_threads);
  std::vector<std::thread> readers;
  readers.reserve(options.reader_threads);
  for (size_t t = 0; t < options.reader_threads; ++t) {
    readers.emplace_back(ReaderLoop, &service, std::cref(options),
                         options.world.seed ^ (0x5eed + t), &stop, &counts[t]);
  }

  SoakReport report;
  IngestStats ingest;
  uint64_t poison_op = 0;
  Status run_status = Status::OK();
  // The sliding window rides the ingest cadence: after the tick's crawl
  // lands, posts older than the horizon (behind the corpus-newest
  // timestamp — the anchor a live system has) are expired in place while
  // the reader fleet keeps querying. Expiry runs with the fault plan
  // still live, so an injected failure exercises the transactional
  // rollback under concurrent readers.
  const bool churn =
      options.expire_every_hours > 0 && options.window_horizon_hours > 0;
  WindowSpec horizon;
  horizon.horizon_secs =
      static_cast<int64_t>(options.window_horizon_hours) * 3600;
  auto track_nnz = [&report](size_t nnz) {
    report.final_matrix_nnz = nnz;
    report.peak_matrix_nnz = std::max(report.peak_matrix_nnz, nnz);
  };
  for (int hour = 0; hour < options.hours && run_status.ok();
       hour += cadence) {
    world.AdvanceHours(std::min(cadence, options.hours - hour));
    std::vector<std::string> dirty = world.DrainDirtyUrls();
    if (dirty.empty()) continue;
    ++report.ticks;
    run_status = IngestUrls(&faulty_host, dirty, engine_faults, options,
                            &engine, &metrics, &poison_op, &ingest);
    if (!run_status.ok() || !churn) continue;
    if ((hour / cadence) % std::max(options.expire_every_hours / cadence, 1) !=
        0) {
      continue;
    }
    MutationResult mr;
    if (Status s = engine.ExpireWindow(horizon, &mr); s.ok()) {
      ++report.expirations;
      report.expired_posts += mr.removed_posts;
      report.expired_comments += mr.removed_comments;
      track_nnz(mr.matrix_nnz);
    } else {
      ++report.expire_failures;
    }
  }

  // Final fault-free sweep: no injected failures, no fetch faults, every
  // page re-fetched — the corpus catches up on anything a dropped batch
  // or exhausted retry lost, so the quality probe measures the engine,
  // not the fault plan.
  if (run_status.ok()) {
    engine_faults.ingest_failure_rate = 0.0;
    engine_faults.poison_rate = 0.0;
    engine_faults.publish_stall_rate = 0.0;
    engine_faults.spmv_slow_rate = 0.0;
    engine_faults.transport_drop_rate = 0.0;
    engine_faults.transport_truncate_rate = 0.0;
    engine_faults.transport_kill_rate = 0.0;
    engine_faults.transport_delay_rate = 0.0;
    run_status = IngestUrls(&clean_host, world.AllUrls(), engine_faults,
                            options, &engine, &metrics, &poison_op, &ingest);
  }

  // The sweep re-fetched every page, aged ones included; with churn on,
  // one closing expiry restores the window so the final corpus / matrix /
  // quality probe describe the sliding-window steady state.
  if (run_status.ok() && churn) {
    MutationResult mr;
    if (Status s = engine.ExpireWindow(horizon, &mr); s.ok()) {
      ++report.expirations;
      report.expired_posts += mr.removed_posts;
      report.expired_comments += mr.removed_comments;
      track_nnz(mr.matrix_nnz);
    } else {
      ++report.expire_failures;
    }
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  if (!run_status.ok()) return run_status;

  // ---- assemble the report ----
  report.hours = options.hours;
  report.final_bloggers = grown.num_bloggers();
  report.final_posts = grown.num_posts();
  report.final_comments = grown.num_comments();
  report.publishes = engine.PublishedSequence();
  report.deltas_ingested = ingest.deltas_ingested;
  report.ingest_failures = ingest.ingest_failures;
  report.poisoned_deltas = ingest.poisoned;
  report.poison_rejections = ingest.poison_rejected;
  report.batches_dropped = ingest.dropped;
  report.pages_emitted = ingest.pages;
  report.fetch_failures = ingest.fetch_failures;
  report.rollback_leaks = ingest.rollback_leaks;
  report.invariant_violations = ingest.poison_accepted;
  for (const ReaderCounts& c : counts) {
    report.queries_ok += c.ok;
    report.queries_shed += c.shed;
    report.queries_deadline += c.deadline;
    report.queries_unavailable += c.unavailable;
    report.queries_failed_precondition += c.failed_precondition;
    report.invariant_violations += c.violations;
  }

  obs::MetricsSnapshot msnap = metrics.Snapshot();
  report.queries_degraded = msnap.CounterValue("serve.query.degraded_total");
  report.transport_faults =
      msnap.CounterValue("engine.fault.transport_faults_total");
  report.transport_timeouts =
      msnap.CounterValue("shard.transport.timeouts_total");
  report.transport_bytes = msnap.CounterValue("shard.transport.bytes_total");
  if (const obs::HistogramSample* age =
          msnap.FindHistogram("serve.snapshot.age_us")) {
    report.snapshot_age_p99_us = age->P99();
  }
  // The final sweep re-ingests everything the faults dropped, so the
  // authoritative end-of-run matrix size is the last mutation's gauge,
  // not the last expiry's result.
  if (const obs::GaugeSample* nnz =
          msnap.FindGauge("engine.mutation.matrix_nnz")) {
    track_nnz(static_cast<size_t>(nnz->value));
  }

  // Ranking quality vs the drifting ground truth, by URL identity.
  std::shared_ptr<const AnalysisSnapshot> snap = engine.CurrentSnapshot();
  if (snap != nullptr && options.quality_k > 0 && grown.num_bloggers() > 0) {
    std::unordered_set<std::string> truth;
    for (size_t agent : world.GroundTruthTopK(options.quality_k)) {
      truth.insert(world.agent_url(agent));
    }
    size_t hits = 0;
    for (const ScoredBlogger& s : snap->TopKGeneral(options.quality_k)) {
      if (truth.count(grown.blogger(s.id).url) > 0) ++hits;
    }
    report.quality_overlap =
        static_cast<double>(hits) / static_cast<double>(options.quality_k);
  }

  report.corpus_digest = DigestCorpus(grown);
  if (snap != nullptr) report.influence_digest = DigestInfluence(*snap);

  // ---- gates ----
  report.ok = true;
  auto fail = [&report](std::string why) {
    if (report.ok) {
      report.ok = false;
      report.violation = std::move(why);
    }
  };
  if (report.rollback_leaks > 0) {
    fail(StrFormat("%zu rollback leak(s): failed ingest published a snapshot",
                   report.rollback_leaks));
  }
  if (report.invariant_violations > 0) {
    fail(StrFormat("%zu invariant violation(s): untyped or implausible "
                   "response, or poisoned delta accepted",
                   report.invariant_violations));
  }
  if (report.poisoned_deltas != report.poison_rejections) {
    fail(StrFormat("poison mismatch: %zu injected, %zu rejected",
                   report.poisoned_deltas, report.poison_rejections));
  }
  if (options.max_age_p99_micros > 0 &&
      report.snapshot_age_p99_us >
          static_cast<double>(options.max_age_p99_micros)) {
    fail(StrFormat("snapshot-age p99 %.0fus exceeds budget %lluus",
                   report.snapshot_age_p99_us,
                   static_cast<unsigned long long>(
                       options.max_age_p99_micros)));
  }
  if (options.min_quality_overlap > 0.0 &&
      report.quality_overlap < options.min_quality_overlap) {
    fail(StrFormat("quality overlap %.2f below gate %.2f",
                   report.quality_overlap, options.min_quality_overlap));
  }
  return report;
}

}  // namespace mass::simulate
