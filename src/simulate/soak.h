// Soak harness: N simulated hours of an evolving blogosphere (World)
// crawled, ingested, and queried concurrently under a combined fault plan
// — the crawler-level FaultPlan (transient/permanent/corrupt fetches) AND
// the engine-level EngineFaultPlan (mid-pipeline ingest failures, poisoned
// deltas, publish stalls, slow SpMV, and — when the engine runs sharded —
// dropped/truncated/delayed shard-transport messages and worker kills) —
// while reader fleets replay
// Zipfian domain queries and ad-matching bursts against the QueryService.
//
// The harness asserts the robustness invariants end to end and reports
// them in a SoakReport:
//
//  - NO ROLLBACK LEAK: after every failed ingest, the published snapshot
//    is pointer-identical to the one before the attempt (a failed write
//    never publishes).
//  - NEVER A WRONG ANSWER: every reader response is either a plausible
//    ranking (finite, sorted, valid ids) or a typed degradation status
//    (FailedPrecondition / ResourceExhausted / DeadlineExceeded /
//    Unavailable); anything else counts in invariant_violations.
//  - POISON IS REJECTED: a corrupted delta (invalid ground-truth domain)
//    is refused before any corpus mutation, never silently ingested.
//  - BOUNDED STALENESS: snapshot-age p99 (serve.snapshot.age_us) stays
//    under max_age_p99_micros when configured.
//  - QUALITY TRACKS TRUTH: after a final fault-free sweep, the engine's
//    top-k overlaps the world's decayed-fame ground truth by at least
//    min_quality_overlap when configured.
//  - DETERMINISM: corpus_digest/influence_digest are pure functions of
//    the seed (reader scheduling cannot perturb the write path), so two
//    runs with equal options must report equal digests.
//
// Run it through bench/bench_soak.cc (BENCH_soak.json, --smoke CI gate),
// `mass_cli soak`, or tests/soak_test.cc (short horizon under TSan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/engine_fault.h"
#include "core/engine_options.h"
#include "crawler/fault_injection.h"
#include "serve/query_service.h"
#include "simulate/world.h"

namespace mass::simulate {

/// Scenario knobs for one soak run. The defaults are a mild overnight
/// soak; bench_soak's --smoke preset tightens them into the CI gate.
struct SoakOptions {
  /// Simulated horizon and ingest cadence.
  int hours = 12;
  int crawl_every_hours = 1;

  /// The blogosphere (seed lives here; it also seeds the reader mixes).
  WorldOptions world;

  /// Crawler-level faults applied to every fetch (fault_injection.h).
  FaultPlan crawl_faults;
  /// Engine-level faults applied to every ingest (engine_fault.h). The
  /// plan's sleep hook is honored; rates are zeroed for the final
  /// fault-free sweep.
  EngineFaultPlan engine_faults;

  /// Solver configuration; metrics/fault_plan fields are overwritten by
  /// the harness.
  EngineOptions engine;
  /// Degradation contract for the reader fleet; metrics is overwritten.
  QueryServiceOptions serve;

  /// Reader fleet shape: threads issuing a Zipfian TopByDomain / general
  /// top-k / ad-burst / mixed-batch query mix for the whole run.
  size_t reader_threads = 2;
  /// Domain popularity skew for the Zipfian mix.
  double zipf_exponent = 1.1;
  /// Microseconds each reader idles between queries (0 = spin).
  int64_t reader_pause_micros = 50;

  /// Pages per emitted delta batch.
  size_t batch_pages = 16;
  /// Ingest attempts per delta (first may be poisoned; retries are clean).
  int max_ingest_attempts = 4;

  /// Sliding-window churn: every `expire_every_hours` simulated hours
  /// (0 = never), ExpireWindow drops posts older than
  /// `window_horizon_hours` behind the corpus-newest timestamp. With both
  /// set, the corpus turns over continuously and the steady-state matrix
  /// size is bounded by the window instead of growing with the run.
  int expire_every_hours = 0;
  int window_horizon_hours = 0;

  // ---- gates (0 disables each) ----
  /// Top-k size for the final ranking-quality probe.
  size_t quality_k = 10;
  /// Required |engine top-k ∩ ground-truth top-k| / k after the final
  /// fault-free sweep.
  double min_quality_overlap = 0.0;
  /// Required snapshot-age p99 bound, in microseconds.
  uint64_t max_age_p99_micros = 0;
};

/// What one soak run did and whether the invariants held.
struct SoakReport {
  // ---- shape ----
  int hours = 0;
  size_t ticks = 0;             ///< crawl+ingest rounds
  size_t final_bloggers = 0;
  size_t final_posts = 0;
  size_t final_comments = 0;
  uint64_t publishes = 0;       ///< engine publish sequence at the end

  // ---- write path ----
  size_t deltas_ingested = 0;   ///< successful IngestDelta calls
  size_t ingest_failures = 0;   ///< failed attempts (injected or poison)
  size_t poisoned_deltas = 0;   ///< deltas corrupted by the fault plan
  size_t poison_rejections = 0; ///< ...that the engine refused (must equal)
  size_t batches_dropped = 0;   ///< deltas lost after max_ingest_attempts
  size_t pages_emitted = 0;
  size_t fetch_failures = 0;

  // ---- sliding-window churn (zero unless expire_every_hours is set) ----
  size_t expirations = 0;        ///< successful ExpireWindow calls
  size_t expire_failures = 0;    ///< failed (rolled-back) ExpireWindow calls
  size_t expired_posts = 0;      ///< posts removed across all expirations
  size_t expired_comments = 0;   ///< comments removed across all expirations
  size_t final_matrix_nnz = 0;   ///< compiled-matrix nnz after the last tick
  size_t peak_matrix_nnz = 0;    ///< max nnz observed at any tick

  // ---- shard transport (zero unless engine.num_shards > 1) ----
  uint64_t transport_faults = 0;    ///< injected kTransport faults, all kinds
  uint64_t transport_timeouts = 0;  ///< exchanges that hit the message deadline
  uint64_t transport_bytes = 0;     ///< payload bytes moved by the shard runtime

  // ---- read path (typed outcomes observed by the reader fleet) ----
  uint64_t queries_ok = 0;
  uint64_t queries_shed = 0;              ///< ResourceExhausted
  uint64_t queries_deadline = 0;          ///< DeadlineExceeded
  uint64_t queries_unavailable = 0;       ///< Unavailable (stale reject)
  uint64_t queries_failed_precondition = 0;  ///< before the first publish
  uint64_t queries_degraded = 0;          ///< stale-but-flagged answers

  // ---- invariants ----
  /// Failed ingests that left a DIFFERENT snapshot published (must be 0).
  size_t rollback_leaks = 0;
  /// Poisoned deltas the engine accepted, plus reader responses that were
  /// neither a plausible ranking nor a typed degradation status (must
  /// be 0).
  size_t invariant_violations = 0;
  /// serve.snapshot.age_us p99 over the whole run (microseconds).
  double snapshot_age_p99_us = 0.0;
  /// |top-k ∩ ground truth| / k after the final fault-free sweep.
  double quality_overlap = 0.0;

  /// Fixed-seed determinism witnesses over the final corpus shape/content
  /// and the final published influence scores.
  uint64_t corpus_digest = 0;
  uint64_t influence_digest = 0;

  /// True when every configured gate held. `violation` names the first
  /// failed gate for diagnostics ("" when ok).
  bool ok = false;
  std::string violation;
};

/// Runs the soak scenario to completion. InvalidArgument for a degenerate
/// configuration (no hours, no agents); infrastructure errors (an Analyze
/// that cannot even start) surface as the underlying status. Gate
/// failures do NOT fail the Result — they land in report.ok/violation so
/// callers can still inspect the full report.
Result<SoakReport> RunSoak(const SoakOptions& options);

}  // namespace mass::simulate
