#include "simulate/world.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"
#include "common/string_util.h"
#include "synth/domain_vocab.h"

namespace mass::simulate {
namespace {

// Fixed epoch so simulated timestamps are stable across runs and hosts;
// the engine's recency scoring only looks at relative ages.
constexpr int64_t kEpochSeconds = 1'600'000'000;
constexpr double kTwoPi = 6.283185307179586;

void Normalize(std::vector<double>* weights) {
  double sum = std::accumulate(weights->begin(), weights->end(), 0.0);
  if (sum <= 0.0) {
    std::fill(weights->begin(), weights->end(),
              1.0 / static_cast<double>(weights->size()));
    return;
  }
  for (double& w : *weights) w /= sum;
}

}  // namespace

World::World(WorldOptions options) : options_(options), rng_(options.seed) {
  if (options_.num_agents == 0) options_.num_agents = 1;
  options_.num_domains =
      std::max<size_t>(1, std::min(options_.num_domains,
                                   synth::kNumPaperDomains));
  agents_.resize(options_.num_agents);
  for (size_t a = 0; a < agents_.size(); ++a) {
    Agent& agent = agents_[a];
    agent.name = StrFormat("agent%04zu", a);
    agent.url = "http://world.sim/" + agent.name;
    // Peaked interest mixture: one preferred domain plus noise, so
    // domain-specific rankings have signal from hour zero.
    agent.interests.assign(options_.num_domains, 0.0);
    size_t preferred = rng_.NextUint64(options_.num_domains);
    for (size_t d = 0; d < options_.num_domains; ++d) {
      agent.interests[d] = (d == preferred ? 1.0 : 0.0) +
                           rng_.NextDouble(0.02, 0.25);
    }
    Normalize(&agent.interests);
    agent.expertise = rng_.NextDouble(0.3, 1.0);
    // A pinch of initial fame so the first preferential draws are not
    // degenerate (all-zero weights collapse to index 0).
    agent.fame = rng_.NextDouble(0.5, 1.5);
    agent.profile = text_.GenerateProfile(agent.interests, &rng_);
  }
}

int64_t World::EventTimestamp() {
  // Spread events across the hour; monotonicity within the hour is not
  // required (real comment feeds are not sorted either).
  return kEpochSeconds + (hour_ - 1) * 3600 +
         static_cast<int64_t>(rng_.NextUint64(3600));
}

size_t World::PickAuthor() {
  // Preferential by fame with a uniform floor: famous bloggers post more,
  // but nobody goes silent forever.
  std::vector<double> weights(agents_.size());
  for (size_t a = 0; a < agents_.size(); ++a) {
    weights[a] = agents_[a].fame + 0.5;
  }
  return rng_.NextDiscrete(weights);
}

size_t World::PickCommentTarget() {
  // Flash crowd: most comments pile onto the focus agent's latest posts.
  if (flash_remaining_ > 0 &&
      rng_.NextBernoulli(options_.flash_focus_share) &&
      !agents_[flash_focus_].posts.empty()) {
    const std::vector<size_t>& posts = agents_[flash_focus_].posts;
    size_t recent = std::min<size_t>(posts.size(), 5);
    return posts[posts.size() - 1 - rng_.NextUint64(recent)];
  }
  // Otherwise: a recent post, weighted by its author's fame + expertise —
  // attention begets attention (preferential attachment on content).
  size_t window = std::min<size_t>(posts_.size(), 200);
  size_t first = posts_.size() - window;
  std::vector<double> weights(window);
  for (size_t i = 0; i < window; ++i) {
    const Agent& author = agents_[posts_[first + i].author];
    weights[i] = author.fame + author.expertise + 0.25;
  }
  return first + rng_.NextDiscrete(weights);
}

void World::AdvanceHour() {
  ++hour_;
  activity_ = 1.0 + options_.diurnal_amplitude *
                        std::sin(kTwoPi * static_cast<double>(hour_ % 24) /
                                 24.0);
  activity_ = std::max(activity_, 0.05);

  // Ground-truth fame decays before the hour's new attention lands.
  double decay = options_.fame_half_life_hours > 0.0
                     ? std::pow(0.5, 1.0 / options_.fame_half_life_hours)
                     : 1.0;
  for (Agent& agent : agents_) agent.fame *= decay;

  // Flash-crowd lifecycle: expire, else maybe ignite on a famous agent.
  if (flash_remaining_ > 0) {
    --flash_remaining_;
  } else if (rng_.NextBernoulli(options_.flash_crowd_rate)) {
    std::vector<double> weights(agents_.size());
    for (size_t a = 0; a < agents_.size(); ++a) weights[a] = agents_[a].fame;
    flash_focus_ = rng_.NextDiscrete(weights);
    flash_remaining_ = std::max(options_.flash_duration_hours, 1);
  }

  // Topic drift: interests random-walk and renormalize, so the "right"
  // answer to every domain query moves over a soak run.
  if (options_.interest_drift > 0.0) {
    for (Agent& agent : agents_) {
      for (double& w : agent.interests) {
        w = std::max(0.01, w + rng_.NextGaussian(0.0, options_.interest_drift));
      }
      Normalize(&agent.interests);
    }
  }

  // ---- posts ----
  int posts = rng_.NextPoisson(options_.posts_per_hour * activity_);
  for (int i = 0; i < posts; ++i) {
    size_t author = PickAuthor();
    Agent& agent = agents_[author];
    SimPost post;
    post.author = author;
    post.domain = static_cast<int>(rng_.NextDiscrete(agent.interests));
    post.title = text_.GenerateTitle(static_cast<size_t>(post.domain), &rng_);
    post.content =
        text_.GeneratePost(agent.interests, options_.post_words, &rng_);
    post.timestamp = EventTimestamp();
    agent.posts.push_back(posts_.size());
    posts_.push_back(std::move(post));
    agent.dirty = true;
  }

  // ---- comments ----
  if (!posts_.empty()) {
    double rate = options_.comments_per_hour * activity_;
    if (flash_remaining_ > 0) rate *= std::max(options_.flash_boost, 1.0);
    int comments = rng_.NextPoisson(rate);
    for (int i = 0; i < comments; ++i) {
      size_t target = PickCommentTarget();
      SimPost& post = posts_[target];
      size_t commenter = rng_.NextUint64(agents_.size());
      if (commenter == post.author) {
        commenter = (commenter + 1) % agents_.size();
      }
      SimComment comment;
      comment.commenter = commenter;
      // Attitude tracks the author's expertise: good bloggers earn
      // agreement, so sentiment-weighted influence correlates with truth.
      double expertise = agents_[post.author].expertise;
      double draw = rng_.NextDouble();
      if (draw < 0.25 + 0.5 * expertise) {
        comment.attitude = 1;
      } else if (draw < 0.65 + 0.25 * expertise) {
        comment.attitude = 0;
      } else {
        comment.attitude = -1;
      }
      comment.text = text_.GenerateComment(static_cast<size_t>(post.domain),
                                           comment.attitude,
                                           options_.comment_words, &rng_);
      comment.timestamp = EventTimestamp();
      post.comments.push_back(std::move(comment));
      ++num_comments_;
      agents_[post.author].fame += 1.0;  // received attention
      agents_[post.author].dirty = true;
    }
  }

  // ---- links ----
  int links = rng_.NextPoisson(options_.links_per_hour * activity_);
  for (int i = 0; i < links; ++i) {
    size_t source = rng_.NextUint64(agents_.size());
    std::vector<double> weights(agents_.size());
    for (size_t a = 0; a < agents_.size(); ++a) weights[a] = agents_[a].fame;
    weights[source] = 0.0;  // no self-links
    size_t target = rng_.NextDiscrete(weights);
    if (target == source) continue;
    Agent& src = agents_[source];
    if (std::find(src.links.begin(), src.links.end(), target) !=
        src.links.end()) {
      continue;  // blogroll already carries this edge
    }
    src.links.push_back(target);
    src.dirty = true;
    agents_[target].fame += 2.0;  // an endorsement outweighs one comment
    ++num_links_;
  }
}

void World::AdvanceHours(int hours) {
  for (int i = 0; i < hours; ++i) AdvanceHour();
}

const std::string& World::agent_url(size_t agent) const {
  return agents_[agent].url;
}

const std::string& World::agent_name(size_t agent) const {
  return agents_[agent].name;
}

std::vector<std::string> World::AllUrls() const {
  std::vector<std::string> urls;
  urls.reserve(agents_.size());
  for (const Agent& agent : agents_) urls.push_back(agent.url);
  return urls;
}

std::vector<std::string> World::DrainDirtyUrls() {
  std::vector<std::string> urls;
  for (Agent& agent : agents_) {
    if (agent.dirty) {
      urls.push_back(agent.url);
      agent.dirty = false;
    }
  }
  return urls;
}

std::vector<size_t> World::GroundTruthTopK(size_t k) const {
  std::vector<size_t> order(agents_.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return agents_[a].fame > agents_[b].fame;
  });
  order.resize(std::min(k, order.size()));
  return order;
}

double World::fame(size_t agent) const { return agents_[agent].fame; }

size_t World::flash_focus() const {
  return flash_remaining_ > 0 ? flash_focus_ : agents_.size();
}

BloggerPage World::PageOf(size_t agent) const {
  const Agent& a = agents_[agent];
  BloggerPage page;
  page.url = a.url;
  page.name = a.name;
  page.profile = a.profile;
  page.true_expertise = a.expertise;
  page.true_interests = a.interests;
  page.posts.reserve(a.posts.size());
  for (size_t p : a.posts) {
    const SimPost& post = posts_[p];
    RemotePost out;
    out.title = post.title;
    out.content = post.content;
    out.timestamp = post.timestamp;
    out.true_domain = post.domain;
    out.comments.reserve(post.comments.size());
    for (const SimComment& comment : post.comments) {
      RemoteComment rc;
      rc.commenter_url = agents_[comment.commenter].url;
      rc.text = comment.text;
      rc.timestamp = comment.timestamp;
      rc.true_attitude = comment.attitude;
      out.comments.push_back(std::move(rc));
    }
    page.posts.push_back(std::move(out));
  }
  page.linked_urls.reserve(a.links.size());
  for (size_t target : a.links) {
    page.linked_urls.push_back(agents_[target].url);
  }
  return page;
}

WorldHost::WorldHost(const World* world) : world_(world) {
  for (size_t a = 0; a < world->num_agents(); ++a) {
    url_index_[world->agent_url(a)] = a;
  }
}

Result<BloggerPage> WorldHost::Fetch(const std::string& url) {
  fetch_count_.fetch_add(1, std::memory_order_relaxed);
  auto it = url_index_.find(url);
  if (it == url_index_.end()) {
    return Status::NotFound("no such blogger in world: " + url);
  }
  return world_->PageOf(it->second);
}

}  // namespace mass::simulate
