// World: a seeded, deterministic agent-based blogosphere that EVOLVES —
// the live-corpus counterpart of synth::GenerateBlogosphere's frozen
// snapshot. Agents post, comment, and link hour by hour with topic drift
// (interest vectors random-walk), flash crowds (attention piles onto one
// blogger for a few hours), and diurnal load (a sinusoidal activity
// cycle), modelling the continuous-arrival regime the dynamics literature
// argues influence systems actually live under (Akritidis et al., "Time
// Does Matter").
//
// The world keeps its own ground truth: per-agent "fame", an attention
// score fed by received comments and links and decayed with a configurable
// half-life, so a soak run can ask at any instant "who SHOULD the engine
// rank on top right now?" and compare against the drifting answer.
//
// Determinism contract: every event is drawn from one Rng seeded by
// WorldOptions::seed, and the world is only ever advanced from one thread,
// so a fixed seed replays the identical blogosphere — the foundation for
// the soak harness's fixed-seed reproducibility gate (simulate/soak.h).
//
// WorldHost serves the current world state through the crawler's BlogHost
// interface; DrainDirtyUrls() yields the agents whose pages changed since
// the last drain, which is exactly the URL list a periodic re-crawl
// (DeltaStream) should fetch.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "crawler/blog_host.h"
#include "synth/text_gen.h"

namespace mass::simulate {

/// Event-rate and dynamics knobs. Rates are per simulated hour; the
/// effective rate is modulated by the diurnal cycle (and, for comments,
/// by an active flash crowd).
struct WorldOptions {
  uint64_t seed = 1;
  size_t num_agents = 48;
  /// Topic space; at most synth::kNumPaperDomains (the built-in
  /// vocabularies cap it).
  size_t num_domains = 10;

  // ---- event rates (Poisson means per hour, before modulation) ----
  double posts_per_hour = 10.0;
  double comments_per_hour = 30.0;
  double links_per_hour = 5.0;

  /// Diurnal load: activity(h) = 1 + amplitude * sin(2*pi * (h%24)/24),
  /// floored at 0.05. 0 flattens the cycle.
  double diurnal_amplitude = 0.5;

  /// Per-hour probability that a flash crowd ignites (when none is
  /// active): a fame-weighted focus agent is chosen and comment traffic
  /// concentrates on their posts for flash_duration_hours.
  double flash_crowd_rate = 0.05;
  /// Multiplier on the comment rate while a flash crowd is active.
  double flash_boost = 3.0;
  int flash_duration_hours = 3;
  /// Probability a flash-crowd comment targets the focus agent's posts
  /// (the rest spread normally).
  double flash_focus_share = 0.7;

  /// Topic drift: per-hour Gaussian step added to each interest weight
  /// before renormalizing. 0 freezes interests.
  double interest_drift = 0.02;

  /// Ground-truth attention half-life: fame *= 2^(-1/half_life) per hour.
  double fame_half_life_hours = 48.0;

  // ---- content shape ----
  size_t post_words = 60;
  size_t comment_words = 12;
};

/// One comment as the world recorded it (ground truth attached).
struct SimComment {
  size_t commenter = 0;
  int attitude = 0;  ///< +1 / 0 / -1, recoverable by the sentiment stage
  std::string text;
  int64_t timestamp = 0;
};

/// One post as the world recorded it.
struct SimPost {
  size_t author = 0;
  int domain = 0;  ///< ground-truth topic, sampled from author interests
  std::string title;
  std::string content;
  int64_t timestamp = 0;
  std::vector<SimComment> comments;
};

/// The evolving blogosphere. Advance*() must be called from one thread at
/// a time and never concurrently with WorldHost::Fetch — the soak harness
/// alternates "advance world" and "crawl + ingest" phases, with only
/// QueryService readers running concurrently (they touch the engine's
/// snapshots, never the world).
class World {
 public:
  explicit World(WorldOptions options = {});

  /// Simulates one hour of blogosphere activity: fame decay, possible
  /// flash-crowd ignition/expiry, interest drift, then Poisson-distributed
  /// posts, comments, and links.
  void AdvanceHour();
  void AdvanceHours(int hours);

  // ---- shape ----
  int64_t hours() const { return hour_; }
  size_t num_agents() const { return agents_.size(); }
  size_t num_posts() const { return posts_.size(); }
  size_t num_comments() const { return num_comments_; }
  size_t num_links() const { return num_links_; }
  size_t num_domains() const { return options_.num_domains; }

  const std::string& agent_url(size_t agent) const;
  const std::string& agent_name(size_t agent) const;
  std::vector<std::string> AllUrls() const;

  /// URLs of agents whose pages changed since the last drain (or ever, on
  /// the first call), in agent order — the periodic re-crawl's fetch list.
  std::vector<std::string> DrainDirtyUrls();

  // ---- ground truth ----
  /// Agents ranked by current decayed fame (descending, ties by index).
  std::vector<size_t> GroundTruthTopK(size_t k) const;
  double fame(size_t agent) const;
  /// Active flash-crowd focus agent, or num_agents() when none.
  size_t flash_focus() const;

  /// The current page of `agent` in crawler terms: profile, every post
  /// with its comments (ground-truth domain/attitude attached), blogroll.
  BloggerPage PageOf(size_t agent) const;

 private:
  struct Agent {
    std::string name;
    std::string url;
    std::string profile;
    std::vector<double> interests;  ///< normalized mixture over domains
    double expertise = 0.5;         ///< static quality prior in [0.3, 1]
    double fame = 0.0;              ///< decayed received attention
    std::vector<size_t> posts;      ///< indices into posts_
    std::vector<size_t> links;      ///< outgoing blogroll targets (dedup)
    bool dirty = true;              ///< page changed since last drain
  };

  size_t PickAuthor();
  size_t PickCommentTarget();
  int64_t EventTimestamp();

  WorldOptions options_;
  Rng rng_;
  synth::TextGenerator text_;
  std::vector<Agent> agents_;
  std::vector<SimPost> posts_;
  size_t num_comments_ = 0;
  size_t num_links_ = 0;
  int64_t hour_ = 0;
  size_t flash_focus_ = 0;  ///< valid while flash_remaining_ > 0
  int flash_remaining_ = 0;
  double activity_ = 1.0;  ///< this hour's diurnal multiplier
};

/// Serves the world's CURRENT pages through the crawler interface. The
/// world must outlive the host; Fetch is safe from any number of threads
/// as long as the world is not advancing (see World's contract).
class WorldHost : public BlogHost {
 public:
  explicit WorldHost(const World* world);

  Result<BloggerPage> Fetch(const std::string& url) override;

  uint64_t fetch_count() const { return fetch_count_.load(); }

 private:
  const World* world_;
  std::unordered_map<std::string, size_t> url_index_;
  std::atomic<uint64_t> fetch_count_{0};
};

}  // namespace mass::simulate
