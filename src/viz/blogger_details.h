// The pop-up detail view from the demo (§IV): "the detailed influence
// properties of the blogger (such as the total influence score, domain
// influence score, the number of posts, the link to important posts,
// etc.)" — reproduced as a plain data struct plus a text renderer.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "core/analysis_snapshot.h"
#include "model/corpus.h"

namespace mass {

/// Everything the demo pop-up shows for one blogger.
struct BloggerDetails {
  BloggerId id = kInvalidBlogger;
  std::string name;
  std::string url;
  double total_influence = 0.0;
  double general_links = 0.0;
  double accumulated_post = 0.0;
  size_t num_posts = 0;
  size_t num_comments_received = 0;
  size_t num_comments_written = 0;
  std::vector<double> domain_influence;  ///< indexed by domain

  /// The blogger's most influential posts, best first.
  struct KeyPost {
    PostId id = kInvalidPost;
    std::string title;
    double influence = 0.0;
  };
  std::vector<KeyPost> key_posts;
};

/// Assembles the details for `blogger` from a published analysis snapshot
/// (pin one with MassEngine::CurrentSnapshot() or serve it from a loaded
/// file). Reads only the snapshot — safe concurrent with ingest.
/// `max_key_posts` bounds the "link to important posts" list; at most
/// AnalysisSnapshot::kKeyPostsPerBlogger are precomputed per blogger.
/// InvalidArgument for an out-of-range blogger id.
Result<BloggerDetails> MakeBloggerDetails(const AnalysisSnapshot& snapshot,
                                          BloggerId blogger,
                                          size_t max_key_posts = 3);

/// Multi-line human-readable rendering; domain names come from `domains`.
std::string RenderBloggerDetails(const BloggerDetails& details,
                                 const DomainSet& domains);

}  // namespace mass
