#include "viz/blogger_details.h"

#include <algorithm>

#include "common/string_util.h"

namespace mass {

BloggerDetails MakeBloggerDetails(const MassEngine& engine, BloggerId blogger,
                                  size_t max_key_posts) {
  const Corpus& corpus = engine.corpus();
  BloggerDetails d;
  d.id = blogger;
  d.name = corpus.blogger(blogger).name;
  d.url = corpus.blogger(blogger).url;
  d.total_influence = engine.InfluenceOf(blogger);
  d.general_links = engine.GeneralLinksOf(blogger);
  d.accumulated_post = engine.AccumulatedPostOf(blogger);
  d.domain_influence = engine.DomainVectorOf(blogger);
  d.num_posts = corpus.PostsBy(blogger).size();
  d.num_comments_written = corpus.TotalComments(blogger);
  for (PostId pid : corpus.PostsBy(blogger)) {
    d.num_comments_received += corpus.CommentsOn(pid).size();
  }

  std::vector<BloggerDetails::KeyPost> posts;
  for (PostId pid : corpus.PostsBy(blogger)) {
    posts.push_back(BloggerDetails::KeyPost{
        pid, corpus.post(pid).title, engine.PostInfluenceOf(pid)});
  }
  std::sort(posts.begin(), posts.end(),
            [](const auto& a, const auto& b) {
              if (a.influence != b.influence) return a.influence > b.influence;
              return a.id < b.id;
            });
  if (posts.size() > max_key_posts) posts.resize(max_key_posts);
  d.key_posts = std::move(posts);
  return d;
}

std::string RenderBloggerDetails(const BloggerDetails& details,
                                 const DomainSet& domains) {
  std::string out;
  out += StrFormat("%s (%s)\n", details.name.c_str(), details.url.c_str());
  out += StrFormat("  total influence   %.4f\n", details.total_influence);
  out += StrFormat("  accumulated post  %.4f\n", details.accumulated_post);
  out += StrFormat("  general links     %.4f\n", details.general_links);
  out += StrFormat("  posts %zu, comments received %zu, written %zu\n",
                   details.num_posts, details.num_comments_received,
                   details.num_comments_written);
  out += "  domain influence:\n";
  for (size_t t = 0; t < details.domain_influence.size(); ++t) {
    std::string name =
        t < domains.size() ? domains.name(t) : StrFormat("domain%zu", t);
    out += StrFormat("    %-14s %.4f\n", name.c_str(),
                     details.domain_influence[t]);
  }
  if (!details.key_posts.empty()) {
    out += "  important posts:\n";
    for (const auto& kp : details.key_posts) {
      out += StrFormat("    [%u] %.4f  %s\n", kp.id, kp.influence,
                       kp.title.c_str());
    }
  }
  return out;
}

}  // namespace mass
