#include "viz/blogger_details.h"

#include <algorithm>

#include "common/string_util.h"

namespace mass {

Result<BloggerDetails> MakeBloggerDetails(const AnalysisSnapshot& snapshot,
                                          BloggerId blogger,
                                          size_t max_key_posts) {
  if (blogger >= snapshot.num_bloggers()) {
    return Status::InvalidArgument(
        StrFormat("blogger id %u out of range (snapshot has %zu bloggers)",
                  blogger, snapshot.num_bloggers()));
  }
  BloggerDetails d;
  d.id = blogger;
  d.name = snapshot.blogger_names[blogger];
  d.url = snapshot.blogger_urls[blogger];
  d.total_influence = snapshot.influence[blogger];
  d.general_links = snapshot.general_links[blogger];
  d.accumulated_post = snapshot.accumulated_post[blogger];
  d.domain_influence = snapshot.domain_influence[blogger];
  d.num_posts = snapshot.blogger_post_counts[blogger];
  d.num_comments_received = snapshot.blogger_comments_received[blogger];
  d.num_comments_written = snapshot.blogger_comments_written[blogger];

  // Key posts come from the snapshot's precomputed per-blogger index
  // (already sorted best-first, ties toward smaller post ids).
  const std::vector<RankedPost>& ranked = snapshot.blogger_key_posts[blogger];
  const size_t n = std::min(max_key_posts, ranked.size());
  d.key_posts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    d.key_posts.push_back(
        BloggerDetails::KeyPost{ranked[i].id, ranked[i].title,
                                ranked[i].score});
  }
  return d;
}

std::string RenderBloggerDetails(const BloggerDetails& details,
                                 const DomainSet& domains) {
  std::string out;
  out += StrFormat("%s (%s)\n", details.name.c_str(), details.url.c_str());
  out += StrFormat("  total influence   %.4f\n", details.total_influence);
  out += StrFormat("  accumulated post  %.4f\n", details.accumulated_post);
  out += StrFormat("  general links     %.4f\n", details.general_links);
  out += StrFormat("  posts %zu, comments received %zu, written %zu\n",
                   details.num_posts, details.num_comments_received,
                   details.num_comments_written);
  out += "  domain influence:\n";
  for (size_t t = 0; t < details.domain_influence.size(); ++t) {
    std::string name =
        t < domains.size() ? domains.name(t) : StrFormat("domain%zu", t);
    out += StrFormat("    %-14s %.4f\n", name.c_str(),
                     details.domain_influence[t]);
  }
  if (!details.key_posts.empty()) {
    out += "  important posts:\n";
    for (const auto& kp : details.key_posts) {
      out += StrFormat("    [%u] %.4f  %s\n", kp.id, kp.influence,
                       kp.title.c_str());
    }
  }
  return out;
}

}  // namespace mass
