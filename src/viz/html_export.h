// Self-contained HTML/SVG rendering of a post-reply network — the
// reproduction of the demo's visualization panel (Figure 4). The exported
// page draws every blogger as a circle (radius scaled by influence),
// labels each edge with its total comment count, and supports hover
// tooltips showing the node name and influence; open it in any browser.
#pragma once

#include <string>

#include "viz/post_reply_network.h"

namespace mass {

/// HTML rendering options.
struct HtmlExportOptions {
  std::string title = "MASS post-reply network";
  double width = 1000.0;
  double height = 1000.0;
  double min_node_radius = 6.0;
  double max_node_radius = 22.0;
  bool show_edge_labels = true;
};

/// Renders the (already laid-out) network to a standalone HTML document.
/// Node positions come from VizNode::x/y — run RunForceLayout() first.
std::string RenderHtml(const PostReplyNetwork& network,
                       const HtmlExportOptions& options = {});

}  // namespace mass
