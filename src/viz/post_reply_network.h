// The visualization model behind paper Figure 4: "Each node represents one
// blogger ... A line between two nodes represents the post-reply
// relationship between two bloggers and the number on the line records the
// total number comments of one blogger on the other blogger's posts."
// Supports the demo's ego-network view (double-click a recommended blogger
// to see her post-reply network), save/load as XML, and Graphviz export.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/corpus.h"

namespace mass {

/// A displayed blogger.
struct VizNode {
  BloggerId blogger = kInvalidBlogger;
  std::string name;
  double x = 0.0;  ///< layout position, set by RunForceLayout
  double y = 0.0;
  double influence = 0.0;  ///< optional: node size signal
};

/// An undirected post-reply edge between node indices `a` and `b`.
struct VizEdge {
  uint32_t a = 0;
  uint32_t b = 0;
  /// Comments by a's blogger on b's posts and vice versa; the displayed
  /// line label is the total.
  uint32_t comments_a_on_b = 0;
  uint32_t comments_b_on_a = 0;

  uint32_t total_comments() const { return comments_a_on_b + comments_b_on_a; }
};

/// Force-directed layout parameters (Fruchterman-Reingold style).
struct LayoutOptions {
  int iterations = 150;
  double width = 1000.0;
  double height = 1000.0;
  uint64_t seed = 11;  ///< initial placement
};

/// The post-reply network of a corpus or of an ego neighborhood.
class PostReplyNetwork {
 public:
  /// Builds the network over all bloggers with at least one post-reply
  /// relation. `influence_of` may be empty; otherwise indexed by blogger.
  static PostReplyNetwork Build(const Corpus& corpus,
                                const std::vector<double>& influence_of = {});

  /// Builds the ego network of `center` out to `hops` comment-relation
  /// hops (hops >= 0; 0 yields just the center).
  static PostReplyNetwork BuildEgo(const Corpus& corpus, BloggerId center,
                                   int hops,
                                   const std::vector<double>& influence_of = {});

  const std::vector<VizNode>& nodes() const { return nodes_; }
  const std::vector<VizEdge>& edges() const { return edges_; }
  std::vector<VizNode>& mutable_nodes() { return nodes_; }

  /// Fruchterman-Reingold force-directed layout; fills node x/y.
  void RunForceLayout(const LayoutOptions& options = {});

  /// Serializes to the MASS visualization XML format ("The visualization
  /// graph can be saved as an XML file and be loaded in future").
  std::string ToXml() const;
  static Result<PostReplyNetwork> FromXml(std::string_view xml_text);

  /// Graphviz DOT export, edge labels = total comment counts.
  std::string ToDot() const;

  /// GraphML export (Gephi/yEd/NetworkX compatible): node attributes
  /// name/influence/x/y, edge attribute comments.
  std::string ToGraphMl() const;

 private:
  std::vector<VizNode> nodes_;
  std::vector<VizEdge> edges_;
};

}  // namespace mass
