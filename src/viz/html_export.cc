#include "viz/html_export.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "xml/xml_writer.h"

namespace mass {

std::string RenderHtml(const PostReplyNetwork& network,
                       const HtmlExportOptions& options) {
  const auto& nodes = network.nodes();
  const auto& edges = network.edges();

  // Influence -> radius scaling.
  double max_inf = 0.0;
  for (const VizNode& n : nodes) max_inf = std::max(max_inf, n.influence);
  auto radius_of = [&](const VizNode& n) {
    if (max_inf <= 0.0) return options.min_node_radius;
    double t = std::sqrt(n.influence / max_inf);  // area ~ influence
    return options.min_node_radius +
           t * (options.max_node_radius - options.min_node_radius);
  };

  std::string html;
  html += "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n";
  html += "<title>" + xml::Escape(options.title) + "</title>\n";
  html +=
      "<style>\n"
      "  body { font-family: sans-serif; background: #fafafa; }\n"
      "  .edge { stroke: #8aa; stroke-width: 1.2; }\n"
      "  .edge-label { font-size: 10px; fill: #567; }\n"
      "  .node { fill: #4a90d9; stroke: #245; stroke-width: 1; }\n"
      "  .node:hover { fill: #e8603c; }\n"
      "  .node-label { font-size: 11px; fill: #123; }\n"
      "</style>\n</head>\n<body>\n";
  html += "<h3>" + xml::Escape(options.title) + "</h3>\n";
  html += StrFormat(
      "<p>%zu bloggers, %zu post-reply relations. Node size tracks "
      "influence; edge labels count comments.</p>\n",
      nodes.size(), edges.size());
  html += StrFormat(
      "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" "
      "xmlns=\"http://www.w3.org/2000/svg\">\n",
      options.width, options.height, options.width, options.height);

  // Scale stored layout coordinates into the SVG frame.
  double max_x = 1.0, max_y = 1.0;
  for (const VizNode& n : nodes) {
    max_x = std::max(max_x, n.x);
    max_y = std::max(max_y, n.y);
  }
  const double margin = options.max_node_radius + 4.0;
  auto sx = [&](double x) {
    return margin + x / max_x * (options.width - 2 * margin);
  };
  auto sy = [&](double y) {
    return margin + y / max_y * (options.height - 2 * margin);
  };

  for (const VizEdge& e : edges) {
    double x1 = sx(nodes[e.a].x), y1 = sy(nodes[e.a].y);
    double x2 = sx(nodes[e.b].x), y2 = sy(nodes[e.b].y);
    html += StrFormat(
        "  <line class=\"edge\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" "
        "y2=\"%.1f\"/>\n",
        x1, y1, x2, y2);
    if (options.show_edge_labels) {
      html += StrFormat(
          "  <text class=\"edge-label\" x=\"%.1f\" y=\"%.1f\">%u</text>\n",
          (x1 + x2) / 2.0, (y1 + y2) / 2.0, e.total_comments());
    }
  }
  for (const VizNode& n : nodes) {
    double x = sx(n.x), y = sy(n.y), r = radius_of(n);
    html += StrFormat(
        "  <circle class=\"node\" cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\">"
        "<title>%s (influence %.3f)</title></circle>\n",
        x, y, r, xml::Escape(n.name).c_str(), n.influence);
    html += StrFormat(
        "  <text class=\"node-label\" x=\"%.1f\" y=\"%.1f\">%s</text>\n",
        x + r + 2.0, y + 4.0, xml::Escape(n.name).c_str());
  }
  html += "</svg>\n</body>\n</html>\n";
  return html;
}

}  // namespace mass
