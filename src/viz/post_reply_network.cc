#include "viz/post_reply_network.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "common/rng.h"
#include "common/string_util.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace mass {

namespace {

// Collects directed comment counts commenter -> author over the corpus,
// restricted to bloggers present in `include` (empty = all).
std::map<std::pair<BloggerId, BloggerId>, uint32_t> CommentCounts(
    const Corpus& corpus, const std::vector<bool>& include) {
  std::map<std::pair<BloggerId, BloggerId>, uint32_t> counts;
  for (const Comment& c : corpus.comments()) {
    BloggerId author = corpus.post(c.post).author;
    if (author == c.commenter) continue;
    if (!include.empty() && (!include[author] || !include[c.commenter])) {
      continue;
    }
    ++counts[{c.commenter, author}];
  }
  return counts;
}

PostReplyNetwork BuildFromCounts(
    const Corpus& corpus,
    const std::map<std::pair<BloggerId, BloggerId>, uint32_t>& counts,
    const std::vector<BloggerId>& blogger_order,
    const std::vector<double>& influence_of) {
  PostReplyNetwork net;
  std::unordered_map<BloggerId, uint32_t> node_of;
  auto ensure_node = [&](BloggerId b) -> uint32_t {
    auto it = node_of.find(b);
    if (it != node_of.end()) return it->second;
    uint32_t idx = static_cast<uint32_t>(net.mutable_nodes().size());
    VizNode node;
    node.blogger = b;
    node.name = corpus.blogger(b).name;
    if (b < influence_of.size()) node.influence = influence_of[b];
    net.mutable_nodes().push_back(std::move(node));
    node_of.emplace(b, idx);
    return idx;
  };
  for (BloggerId b : blogger_order) ensure_node(b);
  return net;  // edges are added by the callers below via friend-free API
}

}  // namespace

PostReplyNetwork PostReplyNetwork::Build(
    const Corpus& corpus, const std::vector<double>& influence_of) {
  auto counts = CommentCounts(corpus, {});
  // Node order: ascending blogger id over participants.
  std::vector<BloggerId> participants;
  {
    std::vector<bool> seen(corpus.num_bloggers(), false);
    for (const auto& [pair, n] : counts) {
      seen[pair.first] = true;
      seen[pair.second] = true;
    }
    for (BloggerId b = 0; b < corpus.num_bloggers(); ++b) {
      if (seen[b]) participants.push_back(b);
    }
  }
  PostReplyNetwork net =
      BuildFromCounts(corpus, counts, participants, influence_of);
  std::unordered_map<BloggerId, uint32_t> node_of;
  for (uint32_t i = 0; i < net.nodes_.size(); ++i) {
    node_of.emplace(net.nodes_[i].blogger, i);
  }
  // Merge directed counts into undirected edges keyed by (min, max).
  std::map<std::pair<uint32_t, uint32_t>, VizEdge> edges;
  for (const auto& [pair, n] : counts) {
    uint32_t u = node_of.at(pair.first);   // commenter
    uint32_t v = node_of.at(pair.second);  // author
    uint32_t a = std::min(u, v), b = std::max(u, v);
    VizEdge& e = edges[{a, b}];
    e.a = a;
    e.b = b;
    if (u == a) {
      e.comments_a_on_b += n;
    } else {
      e.comments_b_on_a += n;
    }
  }
  for (auto& [key, e] : edges) net.edges_.push_back(e);
  return net;
}

PostReplyNetwork PostReplyNetwork::BuildEgo(
    const Corpus& corpus, BloggerId center, int hops,
    const std::vector<double>& influence_of) {
  // BFS over the undirected comment relation.
  auto all_counts = CommentCounts(corpus, {});
  std::unordered_map<BloggerId, std::vector<BloggerId>> adjacency;
  for (const auto& [pair, n] : all_counts) {
    adjacency[pair.first].push_back(pair.second);
    adjacency[pair.second].push_back(pair.first);
  }
  std::vector<bool> include(corpus.num_bloggers(), false);
  include[center] = true;
  std::queue<std::pair<BloggerId, int>> frontier;
  frontier.push({center, 0});
  while (!frontier.empty()) {
    auto [b, d] = frontier.front();
    frontier.pop();
    if (d >= hops) continue;
    for (BloggerId nb : adjacency[b]) {
      if (include[nb]) continue;
      include[nb] = true;
      frontier.push({nb, d + 1});
    }
  }
  // Re-run the full builder over the restricted blogger set.
  auto counts = CommentCounts(corpus, include);
  std::vector<BloggerId> participants;
  for (BloggerId b = 0; b < corpus.num_bloggers(); ++b) {
    if (include[b]) participants.push_back(b);
  }
  PostReplyNetwork net =
      BuildFromCounts(corpus, counts, participants, influence_of);
  std::unordered_map<BloggerId, uint32_t> node_of;
  for (uint32_t i = 0; i < net.nodes_.size(); ++i) {
    node_of.emplace(net.nodes_[i].blogger, i);
  }
  std::map<std::pair<uint32_t, uint32_t>, VizEdge> edges;
  for (const auto& [pair, n] : counts) {
    uint32_t u = node_of.at(pair.first);
    uint32_t v = node_of.at(pair.second);
    uint32_t a = std::min(u, v), b = std::max(u, v);
    VizEdge& e = edges[{a, b}];
    e.a = a;
    e.b = b;
    if (u == a) {
      e.comments_a_on_b += n;
    } else {
      e.comments_b_on_a += n;
    }
  }
  for (auto& [key, e] : edges) net.edges_.push_back(e);
  return net;
}

void PostReplyNetwork::RunForceLayout(const LayoutOptions& options) {
  const size_t n = nodes_.size();
  if (n == 0) return;
  Rng rng(options.seed);
  for (VizNode& node : nodes_) {
    node.x = rng.NextDouble(0.0, options.width);
    node.y = rng.NextDouble(0.0, options.height);
  }
  if (n == 1) {
    nodes_[0].x = options.width / 2.0;
    nodes_[0].y = options.height / 2.0;
    return;
  }
  const double area = options.width * options.height;
  const double k = std::sqrt(area / static_cast<double>(n));
  double temperature = options.width / 10.0;
  const double cooling =
      temperature / static_cast<double>(std::max(options.iterations, 1));

  std::vector<double> dx(n), dy(n);
  for (int iter = 0; iter < options.iterations; ++iter) {
    std::fill(dx.begin(), dx.end(), 0.0);
    std::fill(dy.begin(), dy.end(), 0.0);
    // Repulsion between every pair.
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double ddx = nodes_[i].x - nodes_[j].x;
        double ddy = nodes_[i].y - nodes_[j].y;
        double dist = std::sqrt(ddx * ddx + ddy * ddy);
        if (dist < 1e-6) {
          ddx = rng.NextDouble(-1.0, 1.0);
          ddy = rng.NextDouble(-1.0, 1.0);
          dist = 1.0;
        }
        double force = k * k / dist;
        dx[i] += ddx / dist * force;
        dy[i] += ddy / dist * force;
        dx[j] -= ddx / dist * force;
        dy[j] -= ddy / dist * force;
      }
    }
    // Attraction along edges, weighted by log(1 + comments).
    for (const VizEdge& e : edges_) {
      double ddx = nodes_[e.a].x - nodes_[e.b].x;
      double ddy = nodes_[e.a].y - nodes_[e.b].y;
      double dist = std::sqrt(ddx * ddx + ddy * ddy);
      if (dist < 1e-6) continue;
      double weight = 1.0 + std::log1p(static_cast<double>(e.total_comments()));
      double force = dist * dist / k * weight;
      dx[e.a] -= ddx / dist * force;
      dy[e.a] -= ddy / dist * force;
      dx[e.b] += ddx / dist * force;
      dy[e.b] += ddy / dist * force;
    }
    // Displace, clamped by temperature and the frame.
    for (size_t i = 0; i < n; ++i) {
      double disp = std::sqrt(dx[i] * dx[i] + dy[i] * dy[i]);
      if (disp < 1e-9) continue;
      double limited = std::min(disp, temperature);
      nodes_[i].x += dx[i] / disp * limited;
      nodes_[i].y += dy[i] / disp * limited;
      nodes_[i].x = std::clamp(nodes_[i].x, 0.0, options.width);
      nodes_[i].y = std::clamp(nodes_[i].y, 0.0, options.height);
    }
    temperature = std::max(temperature - cooling, 0.01);
  }
}

std::string PostReplyNetwork::ToXml() const {
  std::ostringstream os;
  xml::XmlWriter w(os);
  w.StartDocument();
  w.StartElement("visualization");
  w.Attribute("version", int64_t{1});
  w.StartElement("nodes");
  for (const VizNode& node : nodes_) {
    w.StartElement("node");
    w.Attribute("blogger", static_cast<int64_t>(node.blogger));
    w.Attribute("name", node.name);
    w.Attribute("x", node.x);
    w.Attribute("y", node.y);
    w.Attribute("influence", node.influence);
    w.EndElement();
  }
  w.EndElement();
  w.StartElement("edges");
  for (const VizEdge& e : edges_) {
    w.StartElement("edge");
    w.Attribute("a", static_cast<int64_t>(e.a));
    w.Attribute("b", static_cast<int64_t>(e.b));
    w.Attribute("ab", static_cast<int64_t>(e.comments_a_on_b));
    w.Attribute("ba", static_cast<int64_t>(e.comments_b_on_a));
    w.EndElement();
  }
  w.EndElement();
  w.EndElement();
  return os.str();
}

Result<PostReplyNetwork> PostReplyNetwork::FromXml(std::string_view xml_text) {
  MASS_ASSIGN_OR_RETURN(auto root, xml::ParseDocument(xml_text));
  if (root->name != "visualization") {
    return Status::Corruption("expected <visualization> root");
  }
  PostReplyNetwork net;
  const xml::XmlNode* nodes = root->Child("nodes");
  if (nodes == nullptr) return Status::Corruption("missing <nodes>");
  for (const xml::XmlNode* nn : nodes->Children("node")) {
    VizNode node;
    Result<int64_t> blogger = ParseInt64(nn->Attr("blogger"));
    if (!blogger.ok()) {
      return Status::Corruption("bad node blogger id");
    }
    node.blogger = static_cast<BloggerId>(*blogger);
    node.name = std::string(nn->Attr("name"));
    Result<double> x = ParseDouble(nn->Attr("x"));
    Result<double> y = ParseDouble(nn->Attr("y"));
    if (!x.ok() || !y.ok()) {
      return Status::Corruption("bad node position");
    }
    node.x = *x;
    node.y = *y;
    if (nn->HasAttr("influence")) {
      Result<double> inf = ParseDouble(nn->Attr("influence"));
      if (!inf.ok()) {
        return Status::Corruption("bad node influence");
      }
      node.influence = *inf;
    }
    net.nodes_.push_back(std::move(node));
  }
  const xml::XmlNode* edges = root->Child("edges");
  if (edges == nullptr) return Status::Corruption("missing <edges>");
  for (const xml::XmlNode* en : edges->Children("edge")) {
    VizEdge e;
    Result<int64_t> ra = ParseInt64(en->Attr("a"));
    Result<int64_t> rb = ParseInt64(en->Attr("b"));
    Result<int64_t> rab = ParseInt64(en->Attr("ab"));
    Result<int64_t> rba = ParseInt64(en->Attr("ba"));
    if (!ra.ok() || !rb.ok() || !rab.ok() || !rba.ok()) {
      return Status::Corruption("bad edge attributes");
    }
    const int64_t a = *ra, b = *rb, ab = *rab, ba = *rba;
    if (a < 0 || b < 0 || static_cast<size_t>(a) >= net.nodes_.size() ||
        static_cast<size_t>(b) >= net.nodes_.size()) {
      return Status::Corruption("edge endpoint out of range");
    }
    e.a = static_cast<uint32_t>(a);
    e.b = static_cast<uint32_t>(b);
    e.comments_a_on_b = static_cast<uint32_t>(ab);
    e.comments_b_on_a = static_cast<uint32_t>(ba);
    net.edges_.push_back(e);
  }
  return net;
}

std::string PostReplyNetwork::ToGraphMl() const {
  std::ostringstream os;
  xml::XmlWriter w(os);
  w.StartDocument();
  w.StartElement("graphml");
  w.Attribute("xmlns", "http://graphml.graphdrawing.org/xmlns");
  auto key = [&w](const char* id, const char* target, const char* name,
                  const char* type) {
    w.StartElement("key");
    w.Attribute("id", id);
    w.Attribute("for", target);
    w.Attribute("attr.name", name);
    w.Attribute("attr.type", type);
    w.EndElement();
  };
  key("name", "node", "name", "string");
  key("influence", "node", "influence", "double");
  key("x", "node", "x", "double");
  key("y", "node", "y", "double");
  key("comments", "edge", "comments", "int");

  w.StartElement("graph");
  w.Attribute("id", "post_reply");
  w.Attribute("edgedefault", "undirected");
  for (size_t i = 0; i < nodes_.size(); ++i) {
    w.StartElement("node");
    w.Attribute("id", StrFormat("n%zu", i));
    auto data = [&w](const char* k, const std::string& v) {
      w.StartElement("data");
      w.Attribute("key", k);
      w.Text(v);
      w.EndElement();
    };
    data("name", nodes_[i].name);
    data("influence", StrFormat("%.6f", nodes_[i].influence));
    data("x", StrFormat("%.2f", nodes_[i].x));
    data("y", StrFormat("%.2f", nodes_[i].y));
    w.EndElement();
  }
  for (size_t i = 0; i < edges_.size(); ++i) {
    w.StartElement("edge");
    w.Attribute("id", StrFormat("e%zu", i));
    w.Attribute("source", StrFormat("n%u", edges_[i].a));
    w.Attribute("target", StrFormat("n%u", edges_[i].b));
    w.StartElement("data");
    w.Attribute("key", "comments");
    w.Text(StrFormat("%u", edges_[i].total_comments()));
    w.EndElement();
    w.EndElement();
  }
  w.EndElement();  // graph
  w.EndElement();  // graphml
  return os.str();
}

std::string PostReplyNetwork::ToDot() const {
  std::string out = "graph post_reply {\n  node [shape=circle];\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out += StrFormat("  n%zu [label=\"%s\" pos=\"%.1f,%.1f\"];\n", i,
                     nodes_[i].name.c_str(), nodes_[i].x, nodes_[i].y);
  }
  for (const VizEdge& e : edges_) {
    out += StrFormat("  n%u -- n%u [label=\"%u\"];\n", e.a, e.b,
                     e.total_comments());
  }
  out += "}\n";
  return out;
}

}  // namespace mass
