// Word lexicons used by the analyzers:
//  - sentiment polarity words ("agree", "support", "conform", ... per the
//    paper's examples, plus a broader built-in list) for the SF factor,
//  - copy-indicator phrases ("we collect a set of words indicating that an
//    article is a copy of other sources") for the novelty signal.
//
// Lexicons match on *stemmed* lowercase tokens so inflections are covered.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace mass {

/// A set of words (stored stemmed) with membership queries.
class Lexicon {
 public:
  Lexicon() = default;

  /// Builds a lexicon from raw words; each is lowercased and stemmed.
  explicit Lexicon(const std::vector<std::string>& words);

  /// Adds one word (lowercased + stemmed).
  void Add(std::string_view word);

  /// True when the (already stemmed, lowercase) token is in the lexicon.
  bool ContainsStemmed(std::string_view stemmed) const;

  /// Lowercases and stems `word`, then tests membership.
  bool ContainsWord(std::string_view word) const;

  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

/// Built-in positive-sentiment lexicon (includes the paper's examples:
/// agree, support, conform).
const Lexicon& PositiveLexicon();

/// Built-in negative-sentiment lexicon.
const Lexicon& NegativeLexicon();

/// Built-in negation words ("not", "never", ...) used to flip polarity.
const Lexicon& NegationLexicon();

/// Built-in copy-indicator lexicon ("reposted", "forwarded", "via", source
/// attribution words) marking carbon-copy articles.
const Lexicon& CopyIndicatorLexicon();

}  // namespace mass
