#include "text/lexicon.h"

#include "common/string_util.h"
#include "text/porter_stemmer.h"

namespace mass {

Lexicon::Lexicon(const std::vector<std::string>& words) {
  for (const std::string& w : words) Add(w);
}

void Lexicon::Add(std::string_view word) {
  words_.insert(PorterStem(ToLower(word)));
}

bool Lexicon::ContainsStemmed(std::string_view stemmed) const {
  return words_.count(std::string(stemmed)) > 0;
}

bool Lexicon::ContainsWord(std::string_view word) const {
  return ContainsStemmed(PorterStem(ToLower(word)));
}

const Lexicon& PositiveLexicon() {
  static const Lexicon* kLex = new Lexicon({
      // The paper's own examples first.
      "agree", "support", "conform",
      // General positive opinion words.
      "good", "great", "excellent", "awesome", "amazing", "wonderful",
      "fantastic", "brilliant", "love", "enjoy", "helpful",
      "insightful", "inspiring", "impressive", "useful", "valuable",
      "correct", "thanks", "thank", "appreciate",
      "recommend", "endorse", "favorite", "best", "perfect", "superb",
      "outstanding", "informative", "interesting",
      "nice", "beautiful", "admire", "praise", "applaud", "bravo",
      "congratulations", "accurate", "smart", "clever", "wise",
      "convincing", "compelling",
  });
  return *kLex;
}

const Lexicon& NegativeLexicon() {
  static const Lexicon* kLex = new Lexicon({
      "disagree", "oppose", "object", "bad", "terrible", "awful",
      "horrible", "poor", "wrong", "incorrect", "false", "mislead",
      "misleading", "hate", "dislike", "useless", "worthless", "boring",
      "disappointing", "disappointed", "nonsense", "rubbish", "garbage",
      "stupid", "dumb", "ridiculous", "absurd", "flawed", "mistake",
      "error", "fail", "failure", "weak", "confusing", "confused",
      "doubt", "doubtful", "questionable", "biased", "unfair",
      "inaccurate", "refute", "reject", "criticize", "worst", "ugly",
      "shame", "pathetic", "lame", "overrated",
  });
  return *kLex;
}

const Lexicon& NegationLexicon() {
  static const Lexicon* kLex = new Lexicon({
      "not", "no", "never", "neither", "nor", "cannot", "can't", "don't",
      "doesn't", "didn't", "won't", "wouldn't", "shouldn't", "isn't",
      "aren't", "wasn't", "weren't", "hardly", "barely", "without",
  });
  return *kLex;
}

const Lexicon& CopyIndicatorLexicon() {
  static const Lexicon* kLex = new Lexicon({
      // Words signalling that a post is reproduced from another source.
      "repost", "reposted", "forwarded", "forward", "reprinted", "reprint",
      "copied", "copy", "excerpt", "excerpted", "quoted", "source",
      "courtesy", "via", "syndicated", "transcript",
      "translated", "translation", "zhuan",  // common CN blog marker "zhuan tie"
  });
  return *kLex;
}

}  // namespace mass
