// Tokenization for posts, comments, profiles, and advertisements.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mass {

/// Tokenizer options.
struct TokenizerOptions {
  bool lowercase = true;       ///< fold to ASCII lowercase
  bool strip_stopwords = true; ///< drop common function words
  bool stem = true;            ///< apply the Porter stemmer
  size_t min_token_length = 2; ///< drop tokens shorter than this
};

/// Splits text into word tokens (letters and digits; apostrophes are kept
/// inside words so "don't" survives until stopword filtering).
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Tokenizes one document.
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Raw word count of a text — the paper's post-length signal (Eq. 2's
  /// QualityScore uses the length of the post). Counts every word-like
  /// token with no filtering.
  static size_t CountWords(std::string_view text);

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

/// True if `word` (already lowercase) is an English stopword.
bool IsStopword(std::string_view word);

}  // namespace mass
