#include "text/tokenizer.h"

#include <cctype>
#include <unordered_set>

#include "text/porter_stemmer.h"

namespace mass {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '\'';
}

const std::unordered_set<std::string>& StopwordSet() {
  static const std::unordered_set<std::string>* kSet =
      new std::unordered_set<std::string>{
          "a",       "about",  "above",   "after",   "again",   "against",
          "all",     "am",     "an",      "and",     "any",     "are",
          "aren't",  "as",     "at",      "be",      "because", "been",
          "before",  "being",  "below",   "between", "both",    "but",
          "by",      "can",    "cannot",  "could",   "couldn't","did",
          "didn't",  "do",     "does",    "doesn't", "doing",   "don't",
          "down",    "during", "each",    "few",     "for",     "from",
          "further", "had",    "hadn't",  "has",     "hasn't",  "have",
          "haven't", "having", "he",      "her",     "here",    "hers",
          "herself", "him",    "himself", "his",     "how",     "i",
          "if",      "in",     "into",    "is",      "isn't",   "it",
          "it's",    "its",    "itself",  "just",    "me",      "more",
          "most",    "my",     "myself",  "no",      "nor",     "not",
          "now",     "of",     "off",     "on",      "once",    "only",
          "or",      "other",  "our",     "ours",    "ourselves","out",
          "over",    "own",    "same",    "she",     "should",  "shouldn't",
          "so",      "some",   "such",    "than",    "that",    "the",
          "their",   "theirs", "them",    "themselves","then",  "there",
          "these",   "they",   "this",    "those",   "through", "to",
          "too",     "under",  "until",   "up",      "very",    "was",
          "wasn't",  "we",     "were",    "weren't", "what",    "when",
          "where",   "which",  "while",   "who",     "whom",    "why",
          "will",    "with",   "won't",   "would",   "wouldn't","you",
          "your",    "yours",  "yourself","yourselves",
      };
  return *kSet;
}

}  // namespace

bool IsStopword(std::string_view word) {
  return StopwordSet().count(std::string(word)) > 0;
}

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsWordChar(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && IsWordChar(text[i])) ++i;
    if (i == start) continue;
    std::string tok(text.substr(start, i - start));
    // Trim apostrophes that are really quotes.
    while (!tok.empty() && tok.front() == '\'') tok.erase(tok.begin());
    while (!tok.empty() && tok.back() == '\'') tok.pop_back();
    if (tok.empty()) continue;
    if (options_.lowercase) {
      for (char& c : tok) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    if (options_.strip_stopwords && IsStopword(tok)) continue;
    if (options_.stem) tok = PorterStem(tok);
    if (tok.size() < options_.min_token_length) continue;
    out.push_back(std::move(tok));
  }
  return out;
}

size_t Tokenizer::CountWords(std::string_view text) {
  size_t count = 0;
  bool in_word = false;
  for (char c : text) {
    bool w = IsWordChar(c);
    if (w && !in_word) ++count;
    in_word = w;
  }
  return count;
}

}  // namespace mass
