// Vocabulary: bidirectional token <-> dense-id mapping, plus document
// frequency counts for TF-IDF weighting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mass {

using TermId = uint32_t;
inline constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

/// A sparse document vector: sorted (term, weight) pairs.
struct SparseVector {
  std::vector<std::pair<TermId, double>> entries;

  /// Dot product with another sparse vector (both sorted by term id).
  double Dot(const SparseVector& other) const;
  /// Euclidean norm.
  double Norm() const;
  /// Cosine similarity; 0 when either vector is empty.
  double Cosine(const SparseVector& other) const;
  /// Scales all weights in place.
  void Scale(double factor);
  /// Adds `other` (times `factor`) into this vector.
  void Add(const SparseVector& other, double factor = 1.0);
  /// Sorts entries by term id and merges duplicates. Must be called if
  /// entries were appended out of order.
  void Normalize();
};

/// Grow-only token dictionary with document-frequency tracking.
class Vocabulary {
 public:
  /// Returns the id for `token`, adding it when absent.
  TermId GetOrAdd(std::string_view token);

  /// Returns the id for `token` or kInvalidTerm when unknown.
  TermId Find(std::string_view token) const;

  const std::string& token(TermId id) const { return tokens_[id]; }
  size_t size() const { return tokens_.size(); }

  /// Registers one document's token set for DF counting. Duplicate tokens
  /// within the document count once.
  void AddDocument(const std::vector<std::string>& tokens);

  size_t num_documents() const { return num_documents_; }
  size_t document_frequency(TermId id) const { return df_[id]; }

  /// ln((N+1)/(df+1)) + 1 — smoothed inverse document frequency.
  double Idf(TermId id) const;

  /// Builds a raw term-frequency vector over known terms; unknown terms are
  /// added when `add_missing` is true, skipped otherwise.
  SparseVector TfVector(const std::vector<std::string>& tokens,
                        bool add_missing = false);

  /// Builds a TF-IDF vector over known terms (unknown terms skipped),
  /// L2-normalized when `l2_normalize` is set.
  SparseVector TfIdfVector(const std::vector<std::string>& tokens,
                           bool l2_normalize = true) const;

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> tokens_;
  std::vector<size_t> df_;
  size_t num_documents_ = 0;
};

}  // namespace mass
