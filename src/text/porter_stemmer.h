// Porter stemming algorithm (M.F. Porter, 1980), implemented from scratch.
// Used to conflate inflected forms before classification and interest
// mining so that "traveling", "travels" and "travel" share one feature.
#pragma once

#include <string>
#include <string_view>

namespace mass {

/// Stems one lowercase ASCII word. Words shorter than 3 characters are
/// returned unchanged, matching Porter's original behaviour.
std::string PorterStem(std::string_view word);

}  // namespace mass
