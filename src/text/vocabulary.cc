#include "text/vocabulary.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace mass {

double SparseVector::Dot(const SparseVector& other) const {
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < entries.size() && j < other.entries.size()) {
    if (entries[i].first < other.entries[j].first) {
      ++i;
    } else if (entries[i].first > other.entries[j].first) {
      ++j;
    } else {
      sum += entries[i].second * other.entries[j].second;
      ++i;
      ++j;
    }
  }
  return sum;
}

double SparseVector::Norm() const {
  double sum = 0.0;
  for (const auto& [t, w] : entries) sum += w * w;
  return std::sqrt(sum);
}

double SparseVector::Cosine(const SparseVector& other) const {
  double n1 = Norm(), n2 = other.Norm();
  if (n1 <= 0.0 || n2 <= 0.0) return 0.0;
  return Dot(other) / (n1 * n2);
}

void SparseVector::Scale(double factor) {
  for (auto& [t, w] : entries) w *= factor;
}

void SparseVector::Add(const SparseVector& other, double factor) {
  std::vector<std::pair<TermId, double>> merged;
  merged.reserve(entries.size() + other.entries.size());
  size_t i = 0, j = 0;
  while (i < entries.size() || j < other.entries.size()) {
    if (j >= other.entries.size() ||
        (i < entries.size() && entries[i].first < other.entries[j].first)) {
      merged.push_back(entries[i++]);
    } else if (i >= entries.size() ||
               entries[i].first > other.entries[j].first) {
      merged.emplace_back(other.entries[j].first,
                          other.entries[j].second * factor);
      ++j;
    } else {
      merged.emplace_back(entries[i].first,
                          entries[i].second + other.entries[j].second * factor);
      ++i;
      ++j;
    }
  }
  entries = std::move(merged);
}

void SparseVector::Normalize() {
  std::sort(entries.begin(), entries.end());
  std::vector<std::pair<TermId, double>> merged;
  for (const auto& [t, w] : entries) {
    if (!merged.empty() && merged.back().first == t) {
      merged.back().second += w;
    } else {
      merged.emplace_back(t, w);
    }
  }
  entries = std::move(merged);
}

TermId Vocabulary::GetOrAdd(std::string_view token) {
  auto it = index_.find(std::string(token));
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(tokens_.size());
  tokens_.emplace_back(token);
  df_.push_back(0);
  index_.emplace(tokens_.back(), id);
  return id;
}

TermId Vocabulary::Find(std::string_view token) const {
  auto it = index_.find(std::string(token));
  return it == index_.end() ? kInvalidTerm : it->second;
}

void Vocabulary::AddDocument(const std::vector<std::string>& tokens) {
  std::unordered_set<TermId> seen;
  for (const std::string& t : tokens) seen.insert(GetOrAdd(t));
  for (TermId id : seen) ++df_[id];
  ++num_documents_;
}

double Vocabulary::Idf(TermId id) const {
  return std::log(static_cast<double>(num_documents_ + 1) /
                  static_cast<double>(df_[id] + 1)) +
         1.0;
}

SparseVector Vocabulary::TfVector(const std::vector<std::string>& tokens,
                                  bool add_missing) {
  SparseVector v;
  for (const std::string& t : tokens) {
    TermId id = add_missing ? GetOrAdd(t) : Find(t);
    if (id == kInvalidTerm) continue;
    v.entries.emplace_back(id, 1.0);
  }
  v.Normalize();
  return v;
}

SparseVector Vocabulary::TfIdfVector(const std::vector<std::string>& tokens,
                                     bool l2_normalize) const {
  SparseVector v;
  for (const std::string& t : tokens) {
    TermId id = Find(t);
    if (id == kInvalidTerm) continue;
    v.entries.emplace_back(id, 1.0);
  }
  v.Normalize();
  for (auto& [t, w] : v.entries) w *= Idf(t);
  if (l2_normalize) {
    double n = v.Norm();
    if (n > 0.0) v.Scale(1.0 / n);
  }
  return v;
}

}  // namespace mass
