#include "text/porter_stemmer.h"

namespace mass {

namespace {

// The implementation follows the original paper's five-step description.
// `b` holds the word being stemmed; k is the index of its last character.
struct Stemmer {
  std::string b;
  int k = 0;

  bool IsConsonant(int i) const {
    switch (b[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b[0..j]: the number of VC sequences.
  int Measure(int j) const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool HasVowel(int j) const {
    for (int i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int j) const {
    if (j < 1) return false;
    if (b[j] != b[j - 1]) return false;
    return IsConsonant(j);
  }

  // cvc at i, where the second c is not w, x or y; signals a short stem
  // like "hop" that takes an 'e' back ("hoping" -> "hope").
  bool CvcEnding(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    char ch = b[i];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool EndsWith(const char* s) {
    int len = static_cast<int>(std::char_traits<char>::length(s));
    if (len > k + 1) return false;
    if (b.compare(k - len + 1, len, s) != 0) return false;
    j_ = k - len;
    return true;
  }

  void SetTo(const char* s) {
    int len = static_cast<int>(std::char_traits<char>::length(s));
    b.replace(j_ + 1, b.size() - j_ - 1, s);
    k = j_ + len;
    b.resize(k + 1);
  }

  void ReplaceIfMeasure(const char* s) {
    if (Measure(j_) > 0) SetTo(s);
  }

  // Step 1a: plurals. Step 1b: -ed / -ing. Step 1c: y->i.
  void Step1ab() {
    if (b[k] == 's') {
      if (EndsWith("sses")) {
        k -= 2;
      } else if (EndsWith("ies")) {
        SetTo("i");
      } else if (b[k - 1] != 's') {
        --k;
      }
    }
    b.resize(k + 1);
    if (EndsWith("eed")) {
      if (Measure(j_) > 0) --k;
    } else if ((EndsWith("ed") || EndsWith("ing")) && HasVowel(j_)) {
      k = j_;
      b.resize(k + 1);
      if (EndsWith("at")) {
        SetTo("ate");
      } else if (EndsWith("bl")) {
        SetTo("ble");
      } else if (EndsWith("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k)) {
        char ch = b[k];
        if (ch != 'l' && ch != 's' && ch != 'z') --k;
      } else if (Measure(k) == 1 && CvcEnding(k)) {
        j_ = k;
        SetTo("e");
      }
    }
    b.resize(k + 1);
  }

  void Step1c() {
    if (EndsWith("y") && HasVowel(k - 1)) {
      b[k] = 'i';
    }
  }

  void Step2() {
    if (k == 0) return;
    switch (b[k - 1]) {
      case 'a':
        if (EndsWith("ational")) { ReplaceIfMeasure("ate"); break; }
        if (EndsWith("tional")) { ReplaceIfMeasure("tion"); }
        break;
      case 'c':
        if (EndsWith("enci")) { ReplaceIfMeasure("ence"); break; }
        if (EndsWith("anci")) { ReplaceIfMeasure("ance"); }
        break;
      case 'e':
        if (EndsWith("izer")) { ReplaceIfMeasure("ize"); }
        break;
      case 'l':
        if (EndsWith("bli")) { ReplaceIfMeasure("ble"); break; }
        if (EndsWith("alli")) { ReplaceIfMeasure("al"); break; }
        if (EndsWith("entli")) { ReplaceIfMeasure("ent"); break; }
        if (EndsWith("eli")) { ReplaceIfMeasure("e"); break; }
        if (EndsWith("ousli")) { ReplaceIfMeasure("ous"); }
        break;
      case 'o':
        if (EndsWith("ization")) { ReplaceIfMeasure("ize"); break; }
        if (EndsWith("ation")) { ReplaceIfMeasure("ate"); break; }
        if (EndsWith("ator")) { ReplaceIfMeasure("ate"); }
        break;
      case 's':
        if (EndsWith("alism")) { ReplaceIfMeasure("al"); break; }
        if (EndsWith("iveness")) { ReplaceIfMeasure("ive"); break; }
        if (EndsWith("fulness")) { ReplaceIfMeasure("ful"); break; }
        if (EndsWith("ousness")) { ReplaceIfMeasure("ous"); }
        break;
      case 't':
        if (EndsWith("aliti")) { ReplaceIfMeasure("al"); break; }
        if (EndsWith("iviti")) { ReplaceIfMeasure("ive"); break; }
        if (EndsWith("biliti")) { ReplaceIfMeasure("ble"); }
        break;
      case 'g':
        if (EndsWith("logi")) { ReplaceIfMeasure("log"); }
        break;
    }
  }

  void Step3() {
    switch (b[k]) {
      case 'e':
        if (EndsWith("icate")) { ReplaceIfMeasure("ic"); break; }
        if (EndsWith("ative")) { ReplaceIfMeasure(""); break; }
        if (EndsWith("alize")) { ReplaceIfMeasure("al"); }
        break;
      case 'i':
        if (EndsWith("iciti")) { ReplaceIfMeasure("ic"); }
        break;
      case 'l':
        if (EndsWith("ical")) { ReplaceIfMeasure("ic"); break; }
        if (EndsWith("ful")) { ReplaceIfMeasure(""); }
        break;
      case 's':
        if (EndsWith("ness")) { ReplaceIfMeasure(""); }
        break;
    }
  }

  void Step4() {
    if (k == 0) return;
    switch (b[k - 1]) {
      case 'a':
        if (EndsWith("al")) break;
        return;
      case 'c':
        if (EndsWith("ance")) break;
        if (EndsWith("ence")) break;
        return;
      case 'e':
        if (EndsWith("er")) break;
        return;
      case 'i':
        if (EndsWith("ic")) break;
        return;
      case 'l':
        if (EndsWith("able")) break;
        if (EndsWith("ible")) break;
        return;
      case 'n':
        if (EndsWith("ant")) break;
        if (EndsWith("ement")) break;
        if (EndsWith("ment")) break;
        if (EndsWith("ent")) break;
        return;
      case 'o':
        if (EndsWith("ion") && j_ >= 0 && (b[j_] == 's' || b[j_] == 't')) break;
        if (EndsWith("ou")) break;
        return;
      case 's':
        if (EndsWith("ism")) break;
        return;
      case 't':
        if (EndsWith("ate")) break;
        if (EndsWith("iti")) break;
        return;
      case 'u':
        if (EndsWith("ous")) break;
        return;
      case 'v':
        if (EndsWith("ive")) break;
        return;
      case 'z':
        if (EndsWith("ize")) break;
        return;
      default:
        return;
    }
    if (Measure(j_) > 1) {
      k = j_;
      b.resize(k + 1);
    }
  }

  void Step5() {
    j_ = k;
    if (b[k] == 'e') {
      int m = Measure(k - 1);
      if (m > 1 || (m == 1 && !CvcEnding(k - 1))) {
        --k;
        b.resize(k + 1);
      }
    }
    if (b[k] == 'l' && DoubleConsonant(k) && Measure(k) > 1) {
      --k;
      b.resize(k + 1);
    }
  }

  std::string Run(std::string_view word) {
    b.assign(word);
    k = static_cast<int>(b.size()) - 1;
    if (k <= 1) return b;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    b.resize(k + 1);
    return b;
  }

 private:
  int j_ = 0;  // end of the stem for the last EndsWith() match
};

}  // namespace

std::string PorterStem(std::string_view word) {
  Stemmer s;
  return s.Run(word);
}

}  // namespace mass
