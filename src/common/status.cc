#include "common/status.h"

namespace mass {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace mass
