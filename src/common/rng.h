// Deterministic, seedable random number generation for reproducible
// experiments. All stochastic components of MASS (synthetic blogosphere,
// simulated judges, layout jitter) draw from an explicitly seeded Rng so
// that every table and figure regenerates bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mass {

/// SplitMix64-seeded xoshiro256** generator.
///
/// Small, fast, and high quality; independent streams are obtained by
/// constructing with different seeds (e.g. `Rng child(rng.NextUint64())`).
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds yield equal
  /// streams on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to the (non-negative) weights. Returns 0 for an all-zero vector.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Zipf-like rank sample in [0, n): probability of rank r proportional to
  /// 1/(r+1)^exponent. Used for preferential popularity distributions.
  size_t NextZipf(size_t n, double exponent);

  /// Poisson-distributed count with the given mean (Knuth's algorithm for
  /// small means, normal approximation above 64).
  int NextPoisson(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = NextUint64(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mass
