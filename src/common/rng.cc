#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace mass {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0,1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.28318530717958647692;
  cached_gaussian_ = mag * std::sin(two_pi * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

size_t Rng::NextZipf(size_t n, double exponent) {
  assert(n > 0);
  // Inverse-CDF over explicit weights would be O(n) per draw; for the sizes
  // MASS uses (<= a few thousand ranks) a cached-free rejection scheme keeps
  // draws O(1) amortized without per-instance state.
  // Rejection sampling per Devroye: works for exponent > 0.
  if (n == 1) return 0;
  const double e = exponent;
  if (e <= 0.0) return NextUint64(n);
  for (;;) {
    // Sample from the continuous envelope 1/x^e over [1, n+1).
    double u = NextDouble();
    double x;
    if (std::abs(e - 1.0) < 1e-9) {
      x = std::pow(static_cast<double>(n) + 1.0, u);
    } else {
      double a = 1.0 - e;
      double top = std::pow(static_cast<double>(n) + 1.0, a);
      x = std::pow(u * (top - 1.0) + 1.0, 1.0 / a);
    }
    size_t k = static_cast<size_t>(x);  // floor, in [1, n]
    if (k < 1) k = 1;
    if (k > n) k = n;
    // Accept with ratio pmf(k)/envelope(x).
    double ratio = std::pow(static_cast<double>(k) / x, e);
    if (NextDouble() < ratio) return k - 1;
  }
}

int Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation, clamped at zero.
    double v = NextGaussian(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double l = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l);
  return k - 1;
}

}  // namespace mass
