#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace mass {

void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t workers = num_threads > 1 ? static_cast<size_t>(num_threads) : 1;
  // Below ~1k items the thread startup dominates any win.
  if (workers <= 1 || n < 1024) {
    fn(0, n);
    return;
  }
  workers = std::min(workers, n);
  const size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    size_t end = std::min(begin + chunk, n);
    if (begin >= end) break;
    threads.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace mass
