#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace mass {

namespace {

// Chunk layout shared by every entry point: at most `workers` chunks of
// equal ceiling size covering [0, n).
struct ChunkPlan {
  size_t chunk = 0;
  size_t num_chunks = 0;
};

ChunkPlan PlanChunks(size_t n, size_t workers) {
  workers = std::min(std::max<size_t>(workers, 1), n);
  ChunkPlan plan;
  plan.chunk = (n + workers - 1) / workers;
  plan.num_chunks = (n + plan.chunk - 1) / plan.chunk;
  return plan;
}

}  // namespace

void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t workers = num_threads > 1 ? static_cast<size_t>(num_threads) : 1;
  // Below ~1k items the thread startup dominates any win.
  if (workers <= 1 || n < 1024) {
    fn(0, n);
    return;
  }
  ChunkPlan plan = PlanChunks(n, workers);
  std::vector<std::thread> threads;
  threads.reserve(plan.num_chunks);
  for (size_t w = 0; w < plan.num_chunks; ++w) {
    size_t begin = w * plan.chunk;
    size_t end = std::min(begin + plan.chunk, n);
    if (begin >= end) break;
    threads.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& t : threads) t.join();
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || n < 1024) {
    fn(0, n);
    return;
  }
  ChunkPlan plan = PlanChunks(n, pool->num_threads());
  for (size_t w = 0; w < plan.num_chunks; ++w) {
    size_t begin = w * plan.chunk;
    size_t end = std::min(begin + plan.chunk, n);
    if (begin >= end) break;
    pool->Submit([&fn, begin, end] { fn(begin, end); });
  }
  pool->WaitIdle();
}

namespace {

// Shared reduction core: run `run_chunks` to fill `partials`, then fold in
// chunk order so a fixed chunk plan gives a fixed result.
double FoldPartials(const std::vector<double>& partials, double identity,
                    const std::function<double(double, double)>& combine) {
  double acc = identity;
  for (double p : partials) acc = combine(acc, p);
  return acc;
}

}  // namespace

double ParallelReduce(size_t n, int num_threads, double identity,
                      const std::function<double(size_t, size_t)>& chunk_fn,
                      const std::function<double(double, double)>& combine) {
  if (n == 0) return identity;
  size_t workers = num_threads > 1 ? static_cast<size_t>(num_threads) : 1;
  if (workers <= 1 || n < 1024) {
    return combine(identity, chunk_fn(0, n));
  }
  ChunkPlan plan = PlanChunks(n, workers);
  std::vector<double> partials(plan.num_chunks, identity);
  std::vector<std::thread> threads;
  threads.reserve(plan.num_chunks);
  for (size_t w = 0; w < plan.num_chunks; ++w) {
    size_t begin = w * plan.chunk;
    size_t end = std::min(begin + plan.chunk, n);
    if (begin >= end) break;
    threads.emplace_back(
        [&chunk_fn, &partials, w, begin, end] { partials[w] = chunk_fn(begin, end); });
  }
  for (auto& t : threads) t.join();
  return FoldPartials(partials, identity, combine);
}

double ParallelReduce(ThreadPool* pool, size_t n, double identity,
                      const std::function<double(size_t, size_t)>& chunk_fn,
                      const std::function<double(double, double)>& combine) {
  if (n == 0) return identity;
  if (pool == nullptr || pool->num_threads() <= 1 || n < 1024) {
    return combine(identity, chunk_fn(0, n));
  }
  ChunkPlan plan = PlanChunks(n, pool->num_threads());
  std::vector<double> partials(plan.num_chunks, identity);
  for (size_t w = 0; w < plan.num_chunks; ++w) {
    size_t begin = w * plan.chunk;
    size_t end = std::min(begin + plan.chunk, n);
    if (begin >= end) break;
    pool->Submit(
        [&chunk_fn, &partials, w, begin, end] { partials[w] = chunk_fn(begin, end); });
  }
  pool->WaitIdle();
  return FoldPartials(partials, identity, combine);
}

}  // namespace mass
