// Monotonic wall-clock stopwatch for pipeline stage timing.
#pragma once

#include <chrono>

namespace mass {

/// Measures elapsed wall time from construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds as a double.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds as a double.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mass
