// Chunked parallel-for and parallel reductions over an index range, used
// by the analyzer for the embarrassingly parallel per-post / per-comment
// stages (classification, sentiment) and by the compiled influence solver
// for its per-iteration SpMV. Runs inline when a single thread is
// requested or the range is too small to amortize thread startup.
#pragma once

#include <cstddef>
#include <functional>

namespace mass {

class ThreadPool;

/// Invokes `fn(begin, end)` over disjoint chunks covering [0, n), from up
/// to `num_threads` worker threads. `fn` must be safe to call concurrently
/// on disjoint ranges. Blocks until all chunks complete.
void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& fn);

/// Same, but runs the chunks on an existing pool instead of spawning
/// threads per call — the right overload for code invoked many times in a
/// tight loop (the solver calls this once per fixed-point iteration).
/// `pool` may be nullptr, which runs inline. The caller must own the pool
/// exclusively for the duration of the call (WaitIdle is used as the
/// barrier).
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn);

/// Parallel reduction: evaluates `chunk_fn(begin, end)` over disjoint
/// chunks covering [0, n) and folds the per-chunk partials with `combine`,
/// starting from `identity`. Partials are combined in chunk order, so the
/// result is deterministic for a fixed thread count; with an
/// order-independent `combine` (max, min) it is deterministic for ANY
/// thread count. Returns `identity` when n == 0.
double ParallelReduce(size_t n, int num_threads, double identity,
                      const std::function<double(size_t, size_t)>& chunk_fn,
                      const std::function<double(double, double)>& combine);

/// Pool-backed variant of ParallelReduce; `pool` may be nullptr (inline).
double ParallelReduce(ThreadPool* pool, size_t n, double identity,
                      const std::function<double(size_t, size_t)>& chunk_fn,
                      const std::function<double(double, double)>& combine);

}  // namespace mass
