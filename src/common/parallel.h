// Chunked parallel-for over an index range, used by the analyzer for the
// embarrassingly parallel per-post / per-comment stages (classification,
// sentiment). Runs inline when a single thread is requested or the range
// is too small to amortize thread startup.
#pragma once

#include <cstddef>
#include <functional>

namespace mass {

/// Invokes `fn(begin, end)` over disjoint chunks covering [0, n), from up
/// to `num_threads` worker threads. `fn` must be safe to call concurrently
/// on disjoint ranges. Blocks until all chunks complete.
void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace mass
