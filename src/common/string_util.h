// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mass {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any run of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True when `s` starts with / ends with the given prefix / suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses a double / long. The whole (trimmed) input must be consumed;
/// empty input or trailing garbage is InvalidArgument carrying the
/// offending text. This is the repo's error-handling convention for
/// fallible parsing: Result<T> out, never a bool + out-parameter (see
/// docs/extending.md, "Error handling").
Result<double> ParseDouble(std::string_view s);
Result<int64_t> ParseInt64(std::string_view s);

}  // namespace mass
