#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mass {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_emit_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    // Keep only the basename to avoid long absolute paths in logs.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_emit_mu);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal

}  // namespace mass
