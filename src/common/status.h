// Status: lightweight error-handling type in the RocksDB/Arrow style.
//
// Functions that can fail return a Status (or a Result<T>, see result.h)
// instead of throwing. Statuses carry a code and a human-readable message.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mass {

/// Error categories used across the MASS library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  kIOError = 5,
  kOutOfRange = 6,
  kFailedPrecondition = 7,
  kUnimplemented = 8,
  kAborted = 9,
  kInternal = 10,
  kDeadlineExceeded = 11,   ///< a time budget expired before completion
  kResourceExhausted = 12,  ///< admission control shed the request
  kUnavailable = 13,        ///< the service cannot currently honor a contract
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation: a code plus an optional message.
///
/// The OK status carries no allocation; error statuses allocate only for
/// their message. Status is cheap to move and to test.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "<CodeName>: <message>" for errors, "OK" otherwise.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates an error status from an expression, RocksDB-style.
#define MASS_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::mass::Status _mass_status = (expr);       \
    if (!_mass_status.ok()) return _mass_status; \
  } while (0)

}  // namespace mass
