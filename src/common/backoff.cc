#include "common/backoff.h"

#include <algorithm>
#include <chrono>
#include <limits>

namespace mass {

uint64_t StableHash64(std::string_view s) {
  // FNV-1a, 64-bit.
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= static_cast<uint64_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

BackoffSchedule::BackoffSchedule(const BackoffPolicy& policy, uint64_t seed)
    : policy_(policy), rng_(seed) {}

int64_t BackoffSchedule::NextDelayMicros() {
  if (retries_granted_ >= policy_.max_retries) return -1;
  // Every growth step below saturates at kCap instead of overflowing:
  // prev_delay_micros_ is bounded only by policy_.max_delay_micros, which
  // callers may set anywhere up to INT64_MAX, so the naive 3 * prev (and
  // the double->int64 cast past 2^63) is signed-overflow UB at large
  // attempt numbers. kMaxExactDouble is the largest double below 2^63 —
  // any product at or beyond it cannot be cast back safely.
  constexpr int64_t kCap = std::numeric_limits<int64_t>::max();
  constexpr double kMaxExactDouble = 9223372036854774784.0;
  int64_t delay = 0;
  if (prev_delay_micros_ <= 0) {
    delay = policy_.initial_delay_micros;
  } else if (policy_.decorrelated_jitter) {
    const int64_t lo = policy_.initial_delay_micros;
    const int64_t tripled =
        prev_delay_micros_ > kCap / 3 ? kCap : 3 * prev_delay_micros_;
    const int64_t hi = std::max(lo, tripled);
    const double jittered = rng_.NextDouble() * static_cast<double>(hi - lo);
    if (!(jittered < kMaxExactDouble)) {
      delay = kCap;
    } else {
      const int64_t j = static_cast<int64_t>(jittered);
      delay = j > kCap - lo ? kCap : lo + j;
    }
  } else {
    const double grown =
        static_cast<double>(prev_delay_micros_) * policy_.multiplier;
    // The negated comparison also routes a NaN product (garbage
    // multiplier) into the saturated branch instead of UB.
    delay = !(grown < kMaxExactDouble) ? kCap : static_cast<int64_t>(grown);
  }
  delay = std::clamp(delay, int64_t{0}, policy_.max_delay_micros);
  if (policy_.fetch_deadline_micros > 0 &&
      total_delay_micros_ + delay > policy_.fetch_deadline_micros) {
    deadline_exhausted_ = true;
    return -1;
  }
  prev_delay_micros_ = delay;
  total_delay_micros_ += delay;
  ++retries_granted_;
  return delay;
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options, ClockFn clock)
    : options_(options), clock_(std::move(clock)) {}

int64_t CircuitBreaker::NowMicros() const {
  if (clock_) return clock_();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool CircuitBreaker::Allow() {
  if (!options_.enabled) return true;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (NowMicros() - opened_at_micros_ >= options_.cooldown_micros) {
        state_ = State::kHalfOpen;
        half_open_in_flight_ = 1;
        half_open_successes_seen_ = 0;
        if (options_.on_transition) {
          options_.on_transition(State::kOpen, State::kHalfOpen);
        }
        return true;
      }
      ++short_circuits_;
      return false;
    case State::kHalfOpen:
      // Admit at most options_.half_open_successes probes at a time; other
      // callers fail fast until the probes resolve the breaker's fate.
      if (half_open_in_flight_ < options_.half_open_successes) {
        ++half_open_in_flight_;
        return true;
      }
      ++short_circuits_;
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    half_open_in_flight_ = std::max(0, half_open_in_flight_ - 1);
    if (++half_open_successes_seen_ >= options_.half_open_successes) {
      state_ = State::kClosed;
      half_open_in_flight_ = 0;
      half_open_successes_seen_ = 0;
      if (options_.on_transition) {
        options_.on_transition(State::kHalfOpen, State::kClosed);
      }
    }
  }
}

void CircuitBreaker::RecordFailure() {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // A failed probe re-opens immediately and restarts the cooldown.
    state_ = State::kOpen;
    opened_at_micros_ = NowMicros();
    half_open_in_flight_ = 0;
    half_open_successes_seen_ = 0;
    consecutive_failures_ = 0;
    ++trips_;
    if (options_.on_transition) {
      options_.on_transition(State::kHalfOpen, State::kOpen);
    }
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_micros_ = NowMicros();
    consecutive_failures_ = 0;
    ++trips_;
    if (options_.on_transition) {
      options_.on_transition(State::kClosed, State::kOpen);
    }
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

uint64_t CircuitBreaker::short_circuits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return short_circuits_;
}

}  // namespace mass
