// Fixed-size worker pool used by the crawler module (the paper's crawler is
// multi-threaded) and by bulk analysis stages.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mass {

/// A minimal fixed-size thread pool.
///
/// Tasks are arbitrary `std::function<void()>`; `WaitIdle()` blocks until the
/// queue drains and all workers are parked. The destructor waits for queued
/// work to finish.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when tasks arrive / shutdown
  std::condition_variable idle_cv_;   // signalled when a task finishes
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mass
