// Minimal leveled logger. Defaults to warnings-and-above on stderr so that
// library users are not spammed; examples and benches can raise verbosity.
#pragma once

#include <sstream>
#include <string>

namespace mass {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Collects one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define MASS_LOG(level)                                              \
  ::mass::internal::LogMessage(::mass::LogLevel::k##level, __FILE__, \
                               __LINE__)

}  // namespace mass
