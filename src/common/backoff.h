// Retry pacing and failure containment for the crawl/ingest stack.
//
// BackoffSchedule turns a BackoffPolicy into a deterministic sequence of
// retry delays (exponential growth with optional decorrelated jitter,
// capped, bounded by a per-fetch deadline). Seeding the schedule with a
// hash of the URL makes the delay sequence a pure function of the URL —
// reproducible regardless of thread scheduling, like every other
// stochastic component of MASS.
//
// CircuitBreaker is the classic closed / open / half-open automaton: after
// `failure_threshold` consecutive failures the breaker opens and callers
// fail fast instead of burning their retry budget against a dead host;
// after `cooldown_micros` one half-open probe is let through, and its
// outcome closes or re-opens the breaker. The clock is injectable so tests
// drive state transitions without sleeping.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>

#include "common/rng.h"

namespace mass {

/// Retry pacing parameters. All times in microseconds.
struct BackoffPolicy {
  /// Retries after the first attempt; 0 disables retrying.
  int max_retries = 3;
  /// Delay before the first retry.
  int64_t initial_delay_micros = 500;
  /// Upper bound on any single delay.
  int64_t max_delay_micros = 100'000;
  /// Growth factor between consecutive delays (ignored under jitter).
  double multiplier = 2.0;
  /// Decorrelated jitter (Brooker, AWS Architecture Blog 2015): each delay
  /// is uniform in [initial, 3 * previous], capped. Desynchronizes
  /// concurrent retry storms while keeping the expected growth exponential.
  bool decorrelated_jitter = true;
  /// Budget for the summed delays of one fetch; once the next delay would
  /// exceed it the schedule reports exhaustion. 0 = unlimited.
  int64_t fetch_deadline_micros = 0;
};

/// Stable 64-bit FNV-1a hash of a string (URLs, host names). Used to give
/// each URL an independent, schedule-free deterministic stream.
uint64_t StableHash64(std::string_view s);

/// One fetch's deterministic retry-delay sequence.
///
/// NextDelayMicros() returns the delay to sleep before the next retry, or
/// -1 when the retry budget or the per-fetch deadline is exhausted. Equal
/// (policy, seed) pairs yield equal sequences on every platform.
class BackoffSchedule {
 public:
  BackoffSchedule(const BackoffPolicy& policy, uint64_t seed);

  /// Delay for the next retry in microseconds, or -1 when exhausted.
  int64_t NextDelayMicros();

  /// Retries granted so far (successful NextDelayMicros calls).
  int retries_granted() const { return retries_granted_; }

  /// Sum of all granted delays.
  int64_t total_delay_micros() const { return total_delay_micros_; }

  /// True when the last refusal was due to the deadline rather than the
  /// retry count.
  bool deadline_exhausted() const { return deadline_exhausted_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  int retries_granted_ = 0;
  int64_t prev_delay_micros_ = 0;
  int64_t total_delay_micros_ = 0;
  bool deadline_exhausted_ = false;
};

/// Breaker automaton states. Top-level so options (the transition hook
/// below) can name them without depending on the class.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Per-host circuit breaker parameters.
struct CircuitBreakerOptions {
  /// Master switch; a disabled breaker always allows and never trips.
  bool enabled = true;
  /// Consecutive failures that open the breaker.
  int failure_threshold = 8;
  /// How long the breaker stays open before admitting a half-open probe.
  int64_t cooldown_micros = 50'000;
  /// Consecutive probe successes required to close from half-open.
  int half_open_successes = 1;
  /// Invoked on every state change, under the breaker's lock — keep it
  /// cheap and never call back into the breaker. Used by RobustFetcher to
  /// count transitions into the metrics registry.
  std::function<void(BreakerState from, BreakerState to)> on_transition;
};

/// Thread-safe three-state breaker guarding one host.
class CircuitBreaker {
 public:
  using State = BreakerState;

  /// Monotonic clock in microseconds; injectable for deterministic tests.
  using ClockFn = std::function<int64_t()>;

  /// A null `clock` uses std::chrono::steady_clock.
  explicit CircuitBreaker(CircuitBreakerOptions options, ClockFn clock = {});

  /// True when a request may proceed. While open, returns false until the
  /// cooldown elapses, then admits `half_open_successes` probes (further
  /// callers keep failing fast until the probes resolve).
  bool Allow();

  /// Reports the outcome of an allowed request.
  void RecordSuccess();
  void RecordFailure();

  State state() const;

  /// Times the breaker transitioned closed/half-open -> open.
  uint64_t trips() const;

  /// Requests refused while open.
  uint64_t short_circuits() const;

 private:
  int64_t NowMicros() const;

  CircuitBreakerOptions options_;
  ClockFn clock_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_in_flight_ = 0;
  int half_open_successes_seen_ = 0;
  int64_t opened_at_micros_ = 0;
  uint64_t trips_ = 0;
  uint64_t short_circuits_ = 0;
};

}  // namespace mass
