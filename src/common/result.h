// Result<T>: a value-or-Status holder in the Arrow style.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mass {

/// Holds either a value of type T or an error Status.
///
/// A default-constructed Result is an Internal error ("uninitialized").
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  Result() : status_(Status::Internal("uninitialized Result")) {}

  /// Implicit from a value: `return my_value;`
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Implicit from an error status: `return Status::NotFound(...)`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is set.
};

/// Unwraps a Result into `lhs`, propagating errors.
#define MASS_ASSIGN_OR_RETURN(lhs, expr)                 \
  MASS_ASSIGN_OR_RETURN_IMPL_(                           \
      MASS_RESULT_CONCAT_(_mass_result_, __LINE__), lhs, expr)

#define MASS_RESULT_CONCAT_INNER_(a, b) a##b
#define MASS_RESULT_CONCAT_(a, b) MASS_RESULT_CONCAT_INNER_(a, b)
#define MASS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace mass
