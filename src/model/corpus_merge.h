// Merging two corpora — the demo workflow crawls different blogosphere
// neighborhoods in separate sessions ("the user can also specify a portion
// of the blogosphere that s/he is interested in"); merging their XML
// snapshots yields one analyzable corpus.
//
// Identity rules: bloggers are deduplicated by URL (falling back to name
// when the URL is empty); posts by (author, timestamp, title); comments by
// (post, commenter, timestamp, text); links by (from, to). The left
// corpus's metadata wins on conflicts.
#pragma once

#include "common/result.h"
#include "model/corpus.h"

namespace mass {

/// The blogger identity key the merge (and delta ingestion) deduplicates
/// by: URL when present, name otherwise. Keys from the two namespaces
/// never collide ("url:" / "name:" prefixes).
std::string BloggerMergeKey(const Blogger& b);

/// Returns the merged corpus (indexes built, validated).
Result<Corpus> MergeCorpora(const Corpus& left, const Corpus& right);

}  // namespace mass
