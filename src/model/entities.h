// Core data model for the blogosphere: bloggers, posts, comments, and
// blogger-to-blogger links (paper Figure 1's influence graph plus the
// "General Links" network of Eq. 1).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mass {

/// Dense identifiers; indexes into the corpus vectors.
using BloggerId = uint32_t;
using PostId = uint32_t;
using CommentId = uint32_t;

inline constexpr BloggerId kInvalidBlogger =
    std::numeric_limits<BloggerId>::max();
inline constexpr PostId kInvalidPost = std::numeric_limits<PostId>::max();
inline constexpr CommentId kInvalidComment =
    std::numeric_limits<CommentId>::max();

/// A time window over the corpus: the closed interval
/// [anchor - horizon_secs, anchor], evaluated against post/comment
/// timestamps. `as_of` > 0 pins the anchor to an absolute time (activity
/// newer than it is outside the window); `as_of` = 0 anchors at the newest
/// timestamp present, making the window corpus-relative. `horizon_secs` = 0
/// means unbounded look-back. Both zero = no window (the whole corpus).
struct WindowSpec {
  int64_t as_of = 0;
  int64_t horizon_secs = 0;

  bool enabled() const { return as_of > 0 || horizon_secs > 0; }
  friend bool operator==(const WindowSpec&, const WindowSpec&) = default;
};

/// A blog author (one "MSN space" in the paper's crawl).
struct Blogger {
  BloggerId id = kInvalidBlogger;
  std::string name;     ///< display / user name
  std::string url;      ///< space URL (synthetic for generated corpora)
  std::string profile;  ///< free-text profile, used by Scenario 2

  /// Ground-truth domain-interest mixture planted by the synthetic
  /// generator (empty for real crawls). Index = domain id; sums to 1.
  std::vector<double> true_interests;

  /// Ground-truth expertise level in [0,1] planted by the generator
  /// (0 when unknown). Judges in the simulated user study consult this.
  double true_expertise = 0.0;

  /// Ground truth: this blogger is a comment spammer (high-volume,
  /// indiscriminate commenting) planted by the generator. The TC
  /// normalization and citation facets exist to defuse exactly these.
  bool true_spammer = false;
};

/// One blog post.
struct Post {
  PostId id = kInvalidPost;
  BloggerId author = kInvalidBlogger;
  std::string title;
  std::string content;
  int64_t timestamp = 0;  ///< seconds since epoch (synthetic clock)

  /// Ground-truth dominant domain planted by the generator; -1 if unknown.
  int true_domain = -1;
  /// True when the generator created this post as a carbon copy.
  bool true_copy = false;
};

/// A comment by `commenter` on post `post`.
struct Comment {
  CommentId id = 0;
  PostId post = kInvalidPost;
  BloggerId commenter = kInvalidBlogger;
  std::string text;
  int64_t timestamp = 0;

  /// Ground-truth attitude planted by the generator: +1 positive, 0
  /// neutral, -1 negative; -2 when unknown (real crawls).
  int true_attitude = -2;
};

/// A directed blogger-to-blogger hyperlink ("when a person finds a blog
/// interesting, s/he may directly add a link to it in her/his own space").
struct Link {
  BloggerId from = kInvalidBlogger;
  BloggerId to = kInvalidBlogger;
};

}  // namespace mass
