#include "model/corpus_merge.h"

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>

namespace mass {

std::string BloggerMergeKey(const Blogger& b) {
  return b.url.empty() ? "name:" + b.name : "url:" + b.url;
}

Result<Corpus> MergeCorpora(const Corpus& left, const Corpus& right) {
  Corpus merged;
  std::unordered_map<std::string, BloggerId> blogger_of;

  // Bloggers, left first (left wins on duplicate identity).
  auto add_bloggers = [&](const Corpus& src) {
    std::vector<BloggerId> map(src.num_bloggers());
    for (const Blogger& b : src.bloggers()) {
      std::string key = BloggerMergeKey(b);
      auto it = blogger_of.find(key);
      if (it != blogger_of.end()) {
        map[b.id] = it->second;
        continue;
      }
      Blogger copy = b;
      BloggerId id = merged.AddBlogger(std::move(copy));
      blogger_of.emplace(std::move(key), id);
      map[b.id] = id;
    }
    return map;
  };
  std::vector<BloggerId> left_map = add_bloggers(left);
  std::vector<BloggerId> right_map = add_bloggers(right);

  // Posts, deduplicated by (author, timestamp, title).
  std::map<std::tuple<BloggerId, int64_t, std::string>, PostId> post_of;
  auto add_posts = [&](const Corpus& src,
                       const std::vector<BloggerId>& map) -> Result<std::vector<PostId>> {
    std::vector<PostId> pmap(src.num_posts(), kInvalidPost);
    for (const Post& p : src.posts()) {
      auto key = std::make_tuple(map[p.author], p.timestamp, p.title);
      auto it = post_of.find(key);
      if (it != post_of.end()) {
        pmap[p.id] = it->second;
        continue;
      }
      Post copy = p;
      copy.author = map[p.author];
      MASS_ASSIGN_OR_RETURN(PostId id, merged.AddPost(std::move(copy)));
      post_of.emplace(std::move(key), id);
      pmap[p.id] = id;
    }
    return pmap;
  };
  MASS_ASSIGN_OR_RETURN(std::vector<PostId> left_posts,
                        add_posts(left, left_map));
  MASS_ASSIGN_OR_RETURN(std::vector<PostId> right_posts,
                        add_posts(right, right_map));

  // Comments, deduplicated by (post, commenter, timestamp, text).
  std::set<std::tuple<PostId, BloggerId, int64_t, std::string>> comment_seen;
  auto add_comments = [&](const Corpus& src,
                          const std::vector<BloggerId>& bmap,
                          const std::vector<PostId>& pmap) -> Status {
    for (const Comment& c : src.comments()) {
      auto key = std::make_tuple(pmap[c.post], bmap[c.commenter],
                                 c.timestamp, c.text);
      if (!comment_seen.insert(key).second) continue;
      Comment copy = c;
      copy.post = pmap[c.post];
      copy.commenter = bmap[c.commenter];
      MASS_RETURN_IF_ERROR(merged.AddComment(std::move(copy)).status());
    }
    return Status::OK();
  };
  MASS_RETURN_IF_ERROR(add_comments(left, left_map, left_posts));
  MASS_RETURN_IF_ERROR(add_comments(right, right_map, right_posts));

  // Links, deduplicated by endpoint pair.
  std::set<std::pair<BloggerId, BloggerId>> link_seen;
  auto add_links = [&](const Corpus& src,
                       const std::vector<BloggerId>& bmap) -> Status {
    for (const Link& l : src.links()) {
      BloggerId from = bmap[l.from], to = bmap[l.to];
      if (from == to) continue;  // distinct source spaces can merge
      if (!link_seen.insert({from, to}).second) continue;
      MASS_RETURN_IF_ERROR(merged.AddLink(from, to));
    }
    return Status::OK();
  };
  MASS_RETURN_IF_ERROR(add_links(left, left_map));
  MASS_RETURN_IF_ERROR(add_links(right, right_map));

  merged.BuildIndexes();
  MASS_RETURN_IF_ERROR(merged.Validate());
  return merged;
}

}  // namespace mass
