// CorpusDelta: one batch of blogosphere additions — the unit of
// incremental ingestion. The crawler module emits deltas as it discovers
// new pages (the paper's crawler runs continuously; a frozen one-shot
// corpus contradicts that), and MassEngine::IngestDelta() folds each one
// into a live analysis without re-running the full pipeline.
//
// A delta is a self-contained corpus fragment with its own local dense
// ids. Bloggers referenced only as commenters or link targets appear as
// stubs (URL set, everything else empty); when the same blogger's real
// page arrives in a later delta, application enriches the existing record
// instead of duplicating it. Identity follows model/corpus_merge: bloggers
// by URL (name fallback), posts by (author, timestamp, title), comments by
// (post, commenter, timestamp, text), links by endpoint pair.
#pragma once

#include "common/result.h"
#include "model/corpus.h"

namespace mass {

/// A batch of additions. `additions` needs no built indexes; application
/// walks the raw entity vectors.
struct CorpusDelta {
  Corpus additions;

  bool empty() const {
    return additions.num_bloggers() == 0 && additions.num_posts() == 0 &&
           additions.num_comments() == 0 && additions.num_links() == 0;
  }
};

/// What ApplyCorpusDelta did: the prior corpus sizes (new entities occupy
/// the contiguous id ranges [prior, prior + added)) and how much of the
/// delta was genuinely new vs already present.
struct AppliedDelta {
  size_t prior_bloggers = 0;
  size_t prior_posts = 0;
  size_t prior_comments = 0;
  size_t prior_links = 0;
  size_t added_bloggers = 0;
  size_t added_posts = 0;
  size_t added_comments = 0;
  size_t added_links = 0;
  size_t duplicate_bloggers = 0;
  size_t duplicate_posts = 0;
  size_t duplicate_comments = 0;
  size_t duplicate_links = 0;

  /// Pre-enrichment copies of the existing blogger records the delta
  /// modified in place (stub fill-in). Together with the prior_* counts
  /// this is everything needed to roll the application back:
  /// Corpus::RollbackTo({prior_*}, enriched_prior).
  std::vector<Blogger> enriched_prior;

  /// The corpus sizes before application, as a rollback mark.
  CorpusMark mark() const {
    return CorpusMark{prior_bloggers, prior_posts, prior_comments,
                      prior_links};
  }

  /// False when every delta entity was already in the corpus. Metadata
  /// enrichment alone (enriched_prior) does not count: it cannot move any
  /// score, so callers may treat such a delta as solved already.
  bool changed() const {
    return added_bloggers + added_posts + added_comments + added_links > 0;
  }
};

/// Appends the delta's genuinely-new entities to `base` in place and
/// extends the indexes incrementally (O(base bloggers + delta) total: the
/// identity maps are rebuilt per call, the index append is O(delta)).
/// Duplicate bloggers enrich the existing record: empty metadata fields
/// (name, profile, interests, expertise, spammer flag) are filled from the
/// delta, the identity-bearing URL is never touched. `base` must have
/// indexes built; on success they are built again.
Result<AppliedDelta> ApplyCorpusDelta(Corpus* base, const CorpusDelta& delta);

}  // namespace mass
