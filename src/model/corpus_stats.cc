#include "model/corpus_stats.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace mass {

DistributionSummary Summarize(std::vector<double> values) {
  DistributionSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  double total = 0.0;
  for (double v : values) total += v;
  s.mean = total / static_cast<double>(n);
  s.p50 = values[n / 2];
  s.p90 = values[(n * 9) / 10];
  s.max = values.back();
  // Gini over the sorted values: (2*sum_i i*x_i)/(n*sum x) - (n+1)/n.
  if (total > 0.0) {
    double weighted = 0.0;
    for (size_t i = 0; i < n; ++i) {
      weighted += static_cast<double>(i + 1) * values[i];
    }
    s.gini = 2.0 * weighted / (static_cast<double>(n) * total) -
             (static_cast<double>(n) + 1.0) / static_cast<double>(n);
    s.gini = std::clamp(s.gini, 0.0, 1.0);
  }
  return s;
}

namespace {

std::string Row(const char* label, const DistributionSummary& d) {
  return StrFormat("  %-28s mean %7.2f  p50 %6.0f  p90 %6.0f  max %6.0f  "
                   "gini %.2f\n",
                   label, d.mean, d.p50, d.p90, d.max, d.gini);
}

}  // namespace

std::string CorpusStats::ToString() const {
  std::string out = StrFormat(
      "corpus: %zu bloggers, %zu posts, %zu comments, %zu links\n", bloggers,
      posts, comments, links);
  out += Row("posts / blogger", posts_per_blogger);
  out += Row("comments / post", comments_per_post);
  out += Row("comments written / blogger", comments_written_per_blogger);
  out += Row("inlinks / blogger", inlinks_per_blogger);
  out += StrFormat("  %-28s %.1f%%\n", "carbon-copy posts",
                   copy_post_fraction * 100.0);
  out += StrFormat("  %-28s %zu\n", "bloggers without posts",
                   bloggers_without_posts);
  return out;
}

CorpusStats ComputeCorpusStats(const Corpus& corpus) {
  CorpusStats s;
  s.bloggers = corpus.num_bloggers();
  s.posts = corpus.num_posts();
  s.comments = corpus.num_comments();
  s.links = corpus.num_links();

  std::vector<double> posts_per(corpus.num_bloggers(), 0.0);
  std::vector<double> written_per(corpus.num_bloggers(), 0.0);
  std::vector<double> inlinks_per(corpus.num_bloggers(), 0.0);
  for (BloggerId b = 0; b < corpus.num_bloggers(); ++b) {
    posts_per[b] = static_cast<double>(corpus.PostsBy(b).size());
    written_per[b] = static_cast<double>(corpus.TotalComments(b));
    inlinks_per[b] = static_cast<double>(corpus.LinksTo(b).size());
    if (corpus.PostsBy(b).empty()) ++s.bloggers_without_posts;
  }
  std::vector<double> comments_per(corpus.num_posts(), 0.0);
  size_t copies = 0;
  for (PostId p = 0; p < corpus.num_posts(); ++p) {
    comments_per[p] = static_cast<double>(corpus.CommentsOn(p).size());
    if (corpus.post(p).true_copy) ++copies;
  }
  s.posts_per_blogger = Summarize(std::move(posts_per));
  s.comments_per_post = Summarize(std::move(comments_per));
  s.comments_written_per_blogger = Summarize(std::move(written_per));
  s.inlinks_per_blogger = Summarize(std::move(inlinks_per));
  s.copy_post_fraction =
      corpus.num_posts() > 0
          ? static_cast<double>(copies) / static_cast<double>(corpus.num_posts())
          : 0.0;
  return s;
}

std::vector<BloggerId> SuggestCrawlSeeds(const Corpus& corpus, size_t k) {
  // Fruitfulness: comments received on own posts + comments written +
  // total link degree — "a blogger with a lot of comments and friends".
  std::vector<std::pair<double, BloggerId>> scored;
  scored.reserve(corpus.num_bloggers());
  for (BloggerId b = 0; b < corpus.num_bloggers(); ++b) {
    double received = 0.0;
    for (PostId p : corpus.PostsBy(b)) {
      received += static_cast<double>(corpus.CommentsOn(p).size());
    }
    double written = static_cast<double>(corpus.TotalComments(b));
    double degree = static_cast<double>(corpus.LinksFrom(b).size() +
                                        corpus.LinksTo(b).size());
    scored.emplace_back(received + written + degree, b);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<BloggerId> out;
  for (size_t i = 0; i < scored.size() && i < k; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace mass
