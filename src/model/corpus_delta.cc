#include "model/corpus_delta.h"

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "model/corpus_merge.h"

namespace mass {

namespace {

// The mutating body; on error the caller rolls `base` back to the mark
// using whatever `out` has accumulated so far.
Status ApplyCorpusDeltaImpl(Corpus* base, const CorpusDelta& delta,
                            AppliedDelta* out_ptr) {
  const Corpus& add = delta.additions;
  AppliedDelta& out = *out_ptr;

  // Identity maps over the existing corpus, same keys as MergeCorpora.
  std::unordered_map<std::string, BloggerId> blogger_of;
  blogger_of.reserve(base->num_bloggers());
  for (const Blogger& b : base->bloggers()) {
    blogger_of.emplace(BloggerMergeKey(b), b.id);
  }
  std::map<std::tuple<BloggerId, int64_t, std::string>, PostId> post_of;
  for (const Post& p : base->posts()) {
    post_of.emplace(std::make_tuple(p.author, p.timestamp, p.title), p.id);
  }
  std::set<std::tuple<PostId, BloggerId, int64_t, std::string>> comment_seen;
  for (const Comment& c : base->comments()) {
    comment_seen.emplace(c.post, c.commenter, c.timestamp, c.text);
  }
  std::set<std::pair<BloggerId, BloggerId>> link_seen;
  for (const Link& l : base->links()) link_seen.emplace(l.from, l.to);

  // Bloggers. A duplicate enriches the existing record: a stub planted by
  // an earlier delta (URL-only commenter or link target) picks up its real
  // metadata when its page finally arrives. The URL is the identity key
  // and is never rewritten.
  bool renamed = false;
  std::vector<BloggerId> bmap(add.num_bloggers(), kInvalidBlogger);
  for (const Blogger& b : add.bloggers()) {
    std::string key = BloggerMergeKey(b);
    auto it = blogger_of.find(key);
    if (it != blogger_of.end()) {
      bmap[b.id] = it->second;
      ++out.duplicate_bloggers;
      Blogger& dst = base->mutable_blogger(it->second);
      // Only URL-keyed records may gain a name; for a name-keyed record
      // the name IS the identity and is already non-empty.
      const bool gains_name =
          dst.name.empty() && !b.name.empty() && !dst.url.empty();
      const bool will_change =
          gains_name || (dst.profile.empty() && !b.profile.empty()) ||
          (dst.true_interests.empty() && !b.true_interests.empty()) ||
          (dst.true_expertise == 0.0 && b.true_expertise != 0.0) ||
          (!dst.true_spammer && b.true_spammer);
      if (will_change) out.enriched_prior.push_back(dst);
      if (gains_name) {
        dst.name = b.name;
        renamed = true;  // name_index_ needs a rebuild, not an append
      }
      if (dst.profile.empty()) dst.profile = b.profile;
      if (dst.true_interests.empty()) dst.true_interests = b.true_interests;
      if (dst.true_expertise == 0.0) dst.true_expertise = b.true_expertise;
      dst.true_spammer = dst.true_spammer || b.true_spammer;
      continue;
    }
    Blogger copy = b;
    BloggerId id = base->AddBlogger(std::move(copy));
    blogger_of.emplace(std::move(key), id);
    bmap[b.id] = id;
    ++out.added_bloggers;
  }

  // Posts, deduplicated by (author, timestamp, title) under mapped ids.
  std::vector<PostId> pmap(add.num_posts(), kInvalidPost);
  for (const Post& p : add.posts()) {
    auto key = std::make_tuple(bmap[p.author], p.timestamp, p.title);
    auto it = post_of.find(key);
    if (it != post_of.end()) {
      pmap[p.id] = it->second;
      ++out.duplicate_posts;
      continue;
    }
    Post copy = p;
    copy.author = bmap[p.author];
    MASS_ASSIGN_OR_RETURN(PostId id, base->AddPost(std::move(copy)));
    post_of.emplace(std::move(key), id);
    pmap[p.id] = id;
    ++out.added_posts;
  }

  // Comments, deduplicated by (post, commenter, timestamp, text).
  for (const Comment& c : add.comments()) {
    auto key = std::make_tuple(pmap[c.post], bmap[c.commenter], c.timestamp,
                               c.text);
    if (!comment_seen.insert(key).second) {
      ++out.duplicate_comments;
      continue;
    }
    Comment copy = c;
    copy.post = pmap[c.post];
    copy.commenter = bmap[c.commenter];
    MASS_RETURN_IF_ERROR(base->AddComment(std::move(copy)).status());
    ++out.added_comments;
  }

  // Links, deduplicated by endpoint pair; distinct fragment bloggers can
  // map to the same corpus blogger, so drop collapsed self-links.
  for (const Link& l : add.links()) {
    BloggerId from = bmap[l.from], to = bmap[l.to];
    if (from == to || !link_seen.emplace(from, to).second) {
      ++out.duplicate_links;
      continue;
    }
    MASS_RETURN_IF_ERROR(base->AddLink(from, to));
    ++out.added_links;
  }

  if (renamed) {
    base->BuildIndexes();
  } else {
    base->ExtendIndexes();
  }
  return Status::OK();
}

}  // namespace

Result<AppliedDelta> ApplyCorpusDelta(Corpus* base, const CorpusDelta& delta) {
  if (!base->indexes_built()) {
    return Status::FailedPrecondition("base corpus indexes not built");
  }
  // The fragment carries its own local ids; a malformed one (hand-built or
  // deserialized from a bad file) must not index out of range below.
  MASS_RETURN_IF_ERROR(delta.additions.Validate());

  AppliedDelta out;
  out.prior_bloggers = base->num_bloggers();
  out.prior_posts = base->num_posts();
  out.prior_comments = base->num_comments();
  out.prior_links = base->num_links();

  Status applied = ApplyCorpusDeltaImpl(base, delta, &out);
  if (!applied.ok()) {
    // Undo the partial application so a rejected delta never leaves the
    // corpus between states. A rollback failure means the mark itself is
    // inconsistent — surface that instead (the corpus is lost either way).
    MASS_RETURN_IF_ERROR(base->RollbackTo(out.mark(), out.enriched_prior));
    return applied;
  }
  return out;
}

}  // namespace mass
