// Descriptive statistics of a corpus — the dataset overview a system
// operator wants before analysis (sizes, activity distributions,
// concentration), plus the demo's seed-selection helper (§IV: the user
// picks "a blogger with a lot of comments and friends" to start a crawl).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/corpus.h"

namespace mass {

/// Five-number-ish summary of a non-negative count distribution.
struct DistributionSummary {
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
  /// Gini coefficient in [0,1]; 0 = perfectly even, 1 = one holder.
  double gini = 0.0;
};

/// Summarizes a vector of counts/values (empty input -> all zeros).
DistributionSummary Summarize(std::vector<double> values);

/// Aggregate corpus statistics.
struct CorpusStats {
  size_t bloggers = 0;
  size_t posts = 0;
  size_t comments = 0;
  size_t links = 0;
  DistributionSummary posts_per_blogger;
  DistributionSummary comments_per_post;
  DistributionSummary comments_written_per_blogger;
  DistributionSummary inlinks_per_blogger;
  double copy_post_fraction = 0.0;  ///< posts flagged true_copy
  size_t bloggers_without_posts = 0;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Computes all statistics; requires built indexes.
CorpusStats ComputeCorpusStats(const Corpus& corpus);

/// Demo §IV seed suggestion: ranks bloggers by crawl fruitfulness — a mix
/// of comments received, comments written, and link degree — and returns
/// the top-k ids, best first.
std::vector<BloggerId> SuggestCrawlSeeds(const Corpus& corpus, size_t k);

}  // namespace mass
