#include "model/corpus.h"

#include <cassert>

#include "common/string_util.h"

namespace mass {

DomainSet DomainSet::PaperDomains() {
  return DomainSet({"Travel", "Computer", "Communication", "Education",
                    "Economics", "Military", "Sports", "Medicine", "Art",
                    "Politics"});
}

int DomainSet::Find(std::string_view name) const {
  std::string lower = ToLower(name);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (ToLower(names_[i]) == lower) return static_cast<int>(i);
  }
  return -1;
}

BloggerId Corpus::AddBlogger(Blogger blogger) {
  BloggerId id = static_cast<BloggerId>(bloggers_.size());
  blogger.id = id;
  bloggers_.push_back(std::move(blogger));
  indexes_built_ = false;
  return id;
}

Result<PostId> Corpus::AddPost(Post post) {
  if (post.author >= bloggers_.size()) {
    return Status::InvalidArgument(
        StrFormat("post author %u out of range (have %zu bloggers)",
                  post.author, bloggers_.size()));
  }
  PostId id = static_cast<PostId>(posts_.size());
  post.id = id;
  posts_.push_back(std::move(post));
  indexes_built_ = false;
  return id;
}

Result<CommentId> Corpus::AddComment(Comment comment) {
  if (comment.post >= posts_.size()) {
    return Status::InvalidArgument(
        StrFormat("comment post %u out of range (have %zu posts)",
                  comment.post, posts_.size()));
  }
  if (comment.commenter >= bloggers_.size()) {
    return Status::InvalidArgument(
        StrFormat("commenter %u out of range (have %zu bloggers)",
                  comment.commenter, bloggers_.size()));
  }
  CommentId id = static_cast<CommentId>(comments_.size());
  comment.id = id;
  comments_.push_back(std::move(comment));
  indexes_built_ = false;
  return id;
}

Status Corpus::AddLink(BloggerId from, BloggerId to) {
  if (from >= bloggers_.size() || to >= bloggers_.size()) {
    return Status::InvalidArgument("link endpoint out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("self-links are not allowed");
  }
  links_.push_back(Link{from, to});
  indexes_built_ = false;
  return Status::OK();
}

void Corpus::BuildIndexes() {
  posts_by_blogger_.assign(bloggers_.size(), {});
  comments_by_post_.assign(posts_.size(), {});
  comments_by_commenter_.assign(bloggers_.size(), {});
  links_from_.assign(bloggers_.size(), {});
  links_to_.assign(bloggers_.size(), {});
  name_index_.clear();

  for (const Post& p : posts_) posts_by_blogger_[p.author].push_back(p.id);
  for (const Comment& c : comments_) {
    comments_by_post_[c.post].push_back(c.id);
    comments_by_commenter_[c.commenter].push_back(c.id);
  }
  for (const Link& l : links_) {
    links_from_[l.from].push_back(l.to);
    links_to_[l.to].push_back(l.from);
  }
  for (const Blogger& b : bloggers_) name_index_.emplace(b.name, b.id);
  indexed_bloggers_ = bloggers_.size();
  indexed_posts_ = posts_.size();
  indexed_comments_ = comments_.size();
  indexed_links_ = links_.size();
  indexes_built_ = true;
}

void Corpus::ExtendIndexes() {
  posts_by_blogger_.resize(bloggers_.size());
  comments_by_post_.resize(posts_.size());
  comments_by_commenter_.resize(bloggers_.size());
  links_from_.resize(bloggers_.size());
  links_to_.resize(bloggers_.size());

  for (size_t i = indexed_posts_; i < posts_.size(); ++i) {
    posts_by_blogger_[posts_[i].author].push_back(posts_[i].id);
  }
  for (size_t i = indexed_comments_; i < comments_.size(); ++i) {
    comments_by_post_[comments_[i].post].push_back(comments_[i].id);
    comments_by_commenter_[comments_[i].commenter].push_back(comments_[i].id);
  }
  for (size_t i = indexed_links_; i < links_.size(); ++i) {
    links_from_[links_[i].from].push_back(links_[i].to);
    links_to_[links_[i].to].push_back(links_[i].from);
  }
  for (size_t i = indexed_bloggers_; i < bloggers_.size(); ++i) {
    name_index_.emplace(bloggers_[i].name, bloggers_[i].id);
  }
  indexed_bloggers_ = bloggers_.size();
  indexed_posts_ = posts_.size();
  indexed_comments_ = comments_.size();
  indexed_links_ = links_.size();
  indexes_built_ = true;
}

CorpusMark Corpus::Mark() const {
  return CorpusMark{bloggers_.size(), posts_.size(), comments_.size(),
                    links_.size()};
}

Status Corpus::RollbackTo(const CorpusMark& mark,
                          const std::vector<Blogger>& restore_bloggers) {
  if (mark.bloggers > bloggers_.size() || mark.posts > posts_.size() ||
      mark.comments > comments_.size() || mark.links > links_.size()) {
    return Status::InvalidArgument(
        "rollback mark exceeds current corpus sizes");
  }
  bloggers_.resize(mark.bloggers);
  posts_.resize(mark.posts);
  comments_.resize(mark.comments);
  links_.resize(mark.links);
  for (const Blogger& b : restore_bloggers) {
    if (b.id >= bloggers_.size()) {
      return Status::InvalidArgument(
          "rollback restore record outlives the mark");
    }
    bloggers_[b.id] = b;
  }
  BuildIndexes();
  return Status::OK();
}

CorpusEntities Corpus::CaptureEntities() const {
  return CorpusEntities{bloggers_, posts_, comments_, links_};
}

void Corpus::RestoreEntities(CorpusEntities entities) {
  bloggers_ = std::move(entities.bloggers);
  posts_ = std::move(entities.posts);
  comments_ = std::move(entities.comments);
  links_ = std::move(entities.links);
  BuildIndexes();
}

Result<CorpusRemoval> Corpus::RemovePostsAndComments(
    const std::vector<uint8_t>& drop_post,
    const std::vector<uint8_t>& drop_comment) {
  if (drop_post.size() != posts_.size() ||
      drop_comment.size() != comments_.size()) {
    return Status::InvalidArgument(
        StrFormat("removal mask sizes %zu/%zu do not match corpus %zu/%zu",
                  drop_post.size(), drop_comment.size(), posts_.size(),
                  comments_.size()));
  }
  for (const Comment& c : comments_) {
    if (!drop_comment[c.id] && drop_post[c.post]) {
      return Status::InvalidArgument(
          StrFormat("comment %u survives removal of its post %u", c.id,
                    c.post));
    }
  }

  CorpusRemoval removal;
  removal.post_map.assign(posts_.size(), kInvalidPost);
  removal.comment_map.assign(comments_.size(), kInvalidComment);

  size_t wp = 0;
  for (size_t p = 0; p < posts_.size(); ++p) {
    if (drop_post[p]) continue;
    removal.post_map[p] = static_cast<PostId>(wp);
    if (wp != p) posts_[wp] = std::move(posts_[p]);
    posts_[wp].id = static_cast<PostId>(wp);
    ++wp;
  }
  removal.removed_posts = posts_.size() - wp;
  posts_.resize(wp);

  size_t wc = 0;
  for (size_t c = 0; c < comments_.size(); ++c) {
    if (drop_comment[c]) continue;
    removal.comment_map[c] = static_cast<CommentId>(wc);
    if (wc != c) comments_[wc] = std::move(comments_[c]);
    comments_[wc].id = static_cast<CommentId>(wc);
    comments_[wc].post = removal.post_map[comments_[wc].post];
    ++wc;
  }
  removal.removed_comments = comments_.size() - wc;
  comments_.resize(wc);

  BuildIndexes();
  return removal;
}

BloggerId Corpus::FindBloggerByName(std::string_view name) const {
  assert(indexes_built_);
  auto it = name_index_.find(std::string(name));
  return it == name_index_.end() ? kInvalidBlogger : it->second;
}

const std::vector<PostId>& Corpus::PostsBy(BloggerId b) const {
  assert(indexes_built_);
  return posts_by_blogger_[b];
}

const std::vector<CommentId>& Corpus::CommentsOn(PostId p) const {
  assert(indexes_built_);
  return comments_by_post_[p];
}

const std::vector<CommentId>& Corpus::CommentsByCommenter(BloggerId b) const {
  assert(indexes_built_);
  return comments_by_commenter_[b];
}

size_t Corpus::TotalComments(BloggerId b) const {
  assert(indexes_built_);
  return comments_by_commenter_[b].size();
}

const std::vector<BloggerId>& Corpus::LinksFrom(BloggerId b) const {
  assert(indexes_built_);
  return links_from_[b];
}

const std::vector<BloggerId>& Corpus::LinksTo(BloggerId b) const {
  assert(indexes_built_);
  return links_to_[b];
}

Status Corpus::Validate() const {
  for (const Post& p : posts_) {
    if (p.author >= bloggers_.size()) {
      return Status::Corruption(
          StrFormat("post %u references missing blogger %u", p.id, p.author));
    }
  }
  for (const Comment& c : comments_) {
    if (c.post >= posts_.size()) {
      return Status::Corruption(
          StrFormat("comment %u references missing post %u", c.id, c.post));
    }
    if (c.commenter >= bloggers_.size()) {
      return Status::Corruption(StrFormat(
          "comment %u references missing blogger %u", c.id, c.commenter));
    }
  }
  for (const Link& l : links_) {
    if (l.from >= bloggers_.size() || l.to >= bloggers_.size()) {
      return Status::Corruption("link endpoint out of range");
    }
    if (l.from == l.to) return Status::Corruption("self-link present");
  }
  return Status::OK();
}

}  // namespace mass
