// Corpus: the in-memory blogosphere snapshot plus the derived indexes every
// analyzer needs (posts by blogger, comments by post, total comments per
// commenter, link adjacency).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "model/entities.h"

namespace mass {

/// The set of predefined interest domains. The paper's evaluation uses ten:
/// {Travel, Computer, Communication, Education, Economics, Military, Sports,
/// Medicine, Art, Politics}.
class DomainSet {
 public:
  DomainSet() = default;
  explicit DomainSet(std::vector<std::string> names) : names_(std::move(names)) {}

  /// The paper's ten evaluation domains, in paper order.
  static DomainSet PaperDomains();

  size_t size() const { return names_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of the named domain (case-insensitive) or -1.
  int Find(std::string_view name) const;

 private:
  std::vector<std::string> names_;
};

/// Entity-count snapshot taken before a batch of mutations; RollbackTo()
/// truncates the (append-only) corpus back to it.
struct CorpusMark {
  size_t bloggers = 0;
  size_t posts = 0;
  size_t comments = 0;
  size_t links = 0;
};

/// Full entity-vector copy for bitwise rollback of removal operations
/// (expiry), which a truncating CorpusMark cannot undo; pair with
/// Corpus::RestoreEntities(). Indexes are not captured — they are a
/// deterministic function of the entities and are rebuilt on restore.
struct CorpusEntities {
  std::vector<Blogger> bloggers;
  std::vector<Post> posts;
  std::vector<Comment> comments;
  std::vector<Link> links;
};

/// Outcome of Corpus::RemovePostsAndComments(): old→new dense-id maps for
/// the survivors (kInvalidPost / kInvalidComment for removed entities) so
/// callers can compact per-post / per-comment side arrays in step.
struct CorpusRemoval {
  std::vector<PostId> post_map;        ///< indexed by pre-removal post id
  std::vector<CommentId> comment_map;  ///< indexed by pre-removal comment id
  size_t removed_posts = 0;
  size_t removed_comments = 0;
};

/// Owning container for one blogosphere snapshot.
///
/// Mutation goes through Add*(); after the data set is complete call
/// BuildIndexes() once, then use the read-side accessors. All ids are dense
/// indexes assigned by the Add* calls.
class Corpus {
 public:
  // ---- construction ----

  /// Adds a blogger and returns its id.
  BloggerId AddBlogger(Blogger blogger);

  /// Adds a post; `post.author` must already exist.
  Result<PostId> AddPost(Post post);

  /// Adds a comment; its post and commenter must already exist.
  Result<CommentId> AddComment(Comment comment);

  /// Adds a blogger->blogger link; both endpoints must exist. Self-links
  /// are rejected (a blogger linking to her own space carries no authority
  /// signal, mirroring PageRank practice).
  Status AddLink(BloggerId from, BloggerId to);

  /// Rebuilds all derived indexes. Must be called after the last mutation
  /// and before any indexed accessor.
  void BuildIndexes();

  /// Indexes only the entities added since the last BuildIndexes() /
  /// ExtendIndexes() call, appending to the existing per-blogger and
  /// per-post lists instead of rebuilding them. Entities are append-only,
  /// so the lists stay sorted ascending by id — the same ordering
  /// BuildIndexes() produces. O(delta) instead of O(corpus); this is what
  /// makes repeated small ingests cheap.
  void ExtendIndexes();

  bool indexes_built() const { return indexes_built_; }

  /// Snapshot of the current entity counts, for RollbackTo().
  CorpusMark Mark() const;

  /// Undoes every mutation made after `mark` was taken: truncates the
  /// append-only entity vectors back to the marked sizes and overwrites
  /// surviving blogger records with the pre-mutation copies in
  /// `restore_bloggers` (records enriched in place by delta application;
  /// matched by id). Rebuilds the indexes. InvalidArgument when the mark
  /// exceeds the current sizes or a restore record's id is out of range.
  Status RollbackTo(const CorpusMark& mark,
                    const std::vector<Blogger>& restore_bloggers = {});

  /// Deep copy of all entity vectors, for RestoreEntities().
  CorpusEntities CaptureEntities() const;

  /// Replaces the entity vectors with a prior CaptureEntities() copy and
  /// rebuilds the indexes; the corpus is bitwise back to the captured
  /// state. Complements RollbackTo(), which can only truncate appends.
  void RestoreEntities(CorpusEntities entities);

  /// Removes the flagged posts and comments in place, renumbering the
  /// dense ids of the survivors (relative order preserved) and rebuilding
  /// the indexes. Mask sizes must equal num_posts()/num_comments(), and
  /// every comment on a dropped post must itself be flagged — a surviving
  /// comment may not dangle. Bloggers and links are never removed: the GL
  /// network outlives any activity window. Sliding-window expiry is the
  /// caller (MassEngine::ExpireWindow).
  Result<CorpusRemoval> RemovePostsAndComments(
      const std::vector<uint8_t>& drop_post,
      const std::vector<uint8_t>& drop_comment);

  // ---- raw access ----

  size_t num_bloggers() const { return bloggers_.size(); }
  size_t num_posts() const { return posts_.size(); }
  size_t num_comments() const { return comments_.size(); }
  size_t num_links() const { return links_.size(); }

  const Blogger& blogger(BloggerId id) const { return bloggers_[id]; }
  Blogger& mutable_blogger(BloggerId id) { return bloggers_[id]; }
  const Post& post(PostId id) const { return posts_[id]; }
  Post& mutable_post(PostId id) { return posts_[id]; }
  const Comment& comment(CommentId id) const { return comments_[id]; }
  const std::vector<Blogger>& bloggers() const { return bloggers_; }
  const std::vector<Post>& posts() const { return posts_; }
  const std::vector<Comment>& comments() const { return comments_; }
  const std::vector<Link>& links() const { return links_; }

  /// Blogger id by exact name, or kInvalidBlogger.
  BloggerId FindBloggerByName(std::string_view name) const;

  // ---- indexed access (require BuildIndexes()) ----

  /// Posts authored by `b` (|P(b_i)| in Eq. 1).
  const std::vector<PostId>& PostsBy(BloggerId b) const;

  /// Comments on post `p` (C(b_i, d_k) in Eq. 3).
  const std::vector<CommentId>& CommentsOn(PostId p) const;

  /// Comments written by `b`.
  const std::vector<CommentId>& CommentsByCommenter(BloggerId b) const;

  /// TC(b_j): total number of comments blogger `b` has written anywhere.
  size_t TotalComments(BloggerId b) const;

  /// Outgoing / incoming blogger links (the GL network).
  const std::vector<BloggerId>& LinksFrom(BloggerId b) const;
  const std::vector<BloggerId>& LinksTo(BloggerId b) const;

  /// Validates referential integrity; used by storage after deserializing.
  Status Validate() const;

 private:
  std::vector<Blogger> bloggers_;
  std::vector<Post> posts_;
  std::vector<Comment> comments_;
  std::vector<Link> links_;

  bool indexes_built_ = false;
  // High-water marks of what the index structures cover (ExtendIndexes
  // picks up from here).
  size_t indexed_bloggers_ = 0;
  size_t indexed_posts_ = 0;
  size_t indexed_comments_ = 0;
  size_t indexed_links_ = 0;
  std::vector<std::vector<PostId>> posts_by_blogger_;
  std::vector<std::vector<CommentId>> comments_by_post_;
  std::vector<std::vector<CommentId>> comments_by_commenter_;
  std::vector<std::vector<BloggerId>> links_from_;
  std::vector<std::vector<BloggerId>> links_to_;
  std::unordered_map<std::string, BloggerId> name_index_;
};

}  // namespace mass
