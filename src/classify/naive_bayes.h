// Multinomial naive Bayes text classifier with Laplace smoothing — the
// paper's method for generating iv(b_i, d_k, C_t) (§II, ref [7]).
#pragma once

#include <vector>

#include "classify/interest_miner.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace mass {

/// Naive Bayes options.
struct NaiveBayesOptions {
  double smoothing = 1.0;  ///< Laplace/Lidstone pseudo-count
  /// Add adjacent-token bigram features ("economic_depression") on top of
  /// the unigrams. Helps when single words are ambiguous across domains.
  bool use_bigrams = false;
  TokenizerOptions tokenizer;
};

/// Multinomial naive Bayes over stemmed unigram features.
///
/// Posterior probabilities are computed in log space and renormalized with
/// the max-subtraction trick, so long documents do not underflow.
class NaiveBayesClassifier : public InterestMiner {
 public:
  explicit NaiveBayesClassifier(NaiveBayesOptions options = {});

  Status Train(const std::vector<LabeledDocument>& examples,
               size_t num_domains) override;
  std::vector<double> InterestVector(std::string_view text) const override;
  size_t num_domains() const override { return num_domains_; }
  std::string name() const override { return "naive-bayes"; }

  /// log P(term | domain) with smoothing; exposed for tests.
  double LogLikelihood(TermId term, size_t domain) const;
  /// log P(domain); exposed for tests.
  double LogPrior(size_t domain) const;

 private:
  NaiveBayesOptions options_;
  Tokenizer tokenizer_;
  Vocabulary vocab_;
  size_t num_domains_ = 0;
  std::vector<double> log_prior_;                 // [domain]
  std::vector<std::vector<double>> term_counts_;  // [domain][term]
  std::vector<double> domain_totals_;             // [domain] total term count
};

}  // namespace mass
