#include "classify/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace mass {

NaiveBayesClassifier::NaiveBayesClassifier(NaiveBayesOptions options)
    : options_(options), tokenizer_(options.tokenizer) {}

namespace {

// Appends "a_b" features for each adjacent unigram pair.
void AppendBigrams(std::vector<std::string>* tokens) {
  size_t n = tokens->size();
  if (n < 2) return;
  tokens->reserve(2 * n - 1);
  for (size_t i = 0; i + 1 < n; ++i) {
    tokens->push_back((*tokens)[i] + "_" + (*tokens)[i + 1]);
  }
}

}  // namespace

Status NaiveBayesClassifier::Train(const std::vector<LabeledDocument>& examples,
                                   size_t num_domains) {
  if (num_domains == 0) {
    return Status::InvalidArgument("num_domains must be positive");
  }
  if (examples.empty()) {
    return Status::InvalidArgument("no training examples");
  }
  num_domains_ = num_domains;
  vocab_ = Vocabulary();
  term_counts_.assign(num_domains, {});
  domain_totals_.assign(num_domains, 0.0);
  std::vector<size_t> doc_counts(num_domains, 0);

  for (const LabeledDocument& ex : examples) {
    if (ex.domain < 0 || static_cast<size_t>(ex.domain) >= num_domains) {
      return Status::InvalidArgument(
          StrFormat("example domain %d out of range [0,%zu)", ex.domain,
                    num_domains));
    }
    std::vector<std::string> tokens = tokenizer_.Tokenize(ex.text);
    if (options_.use_bigrams) AppendBigrams(&tokens);
    vocab_.AddDocument(tokens);
    auto& counts = term_counts_[ex.domain];
    for (const std::string& tok : tokens) {
      TermId id = vocab_.GetOrAdd(tok);
      if (id >= counts.size()) counts.resize(vocab_.size(), 0.0);
      counts[id] += 1.0;
      domain_totals_[ex.domain] += 1.0;
    }
    ++doc_counts[ex.domain];
  }
  // Equalize row widths after training so lookups never bounds-fail.
  for (auto& counts : term_counts_) counts.resize(vocab_.size(), 0.0);

  log_prior_.assign(num_domains, 0.0);
  for (size_t d = 0; d < num_domains; ++d) {
    // Laplace-smoothed priors keep empty classes finite.
    log_prior_[d] = std::log(
        (static_cast<double>(doc_counts[d]) + 1.0) /
        (static_cast<double>(examples.size()) + static_cast<double>(num_domains)));
  }
  return Status::OK();
}

double NaiveBayesClassifier::LogLikelihood(TermId term, size_t domain) const {
  double count = term < term_counts_[domain].size()
                     ? term_counts_[domain][term]
                     : 0.0;
  double denom = domain_totals_[domain] +
                 options_.smoothing * static_cast<double>(vocab_.size());
  return std::log((count + options_.smoothing) / denom);
}

double NaiveBayesClassifier::LogPrior(size_t domain) const {
  return log_prior_[domain];
}

std::vector<double> NaiveBayesClassifier::InterestVector(
    std::string_view text) const {
  std::vector<double> result(num_domains_,
                             num_domains_ ? 1.0 / num_domains_ : 0.0);
  if (num_domains_ == 0) return result;
  std::vector<std::string> tokens = tokenizer_.Tokenize(text);
  if (options_.use_bigrams) AppendBigrams(&tokens);

  std::vector<double> log_post(num_domains_);
  for (size_t d = 0; d < num_domains_; ++d) log_post[d] = log_prior_[d];
  bool any_known = false;
  for (const std::string& tok : tokens) {
    TermId id = vocab_.Find(tok);
    if (id == kInvalidTerm) continue;
    any_known = true;
    for (size_t d = 0; d < num_domains_; ++d) {
      log_post[d] += LogLikelihood(id, d);
    }
  }
  if (!any_known && tokens.empty()) return result;  // uniform for empty text

  double max_lp = *std::max_element(log_post.begin(), log_post.end());
  double total = 0.0;
  for (size_t d = 0; d < num_domains_; ++d) {
    result[d] = std::exp(log_post[d] - max_lp);
    total += result[d];
  }
  for (double& v : result) v /= total;
  return result;
}

}  // namespace mass
