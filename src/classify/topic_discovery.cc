#include "classify/topic_discovery.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace mass {

TopicDiscovery::TopicDiscovery(TopicDiscoveryOptions options)
    : options_(options), tokenizer_(options.tokenizer) {}

double TopicDiscovery::Cosine(const SparseVector& doc, size_t topic) const {
  // Documents and centroids are L2-normalized, so cosine = dot.
  const std::vector<double>& c = centroids_[topic];
  double dot = 0.0;
  for (const auto& [term, weight] : doc.entries) {
    if (term < c.size()) dot += weight * c[term];
  }
  return dot;
}

Status TopicDiscovery::Train(const std::vector<LabeledDocument>& examples,
                             size_t num_domains) {
  if (num_domains == 0) {
    return Status::InvalidArgument("num_domains must be positive");
  }
  if (examples.size() < num_domains) {
    return Status::InvalidArgument(
        StrFormat("need at least %zu documents for %zu topics",
                  num_domains, num_domains));
  }

  // Vectorize.
  vocab_ = Vocabulary();
  std::vector<std::vector<std::string>> tokenized;
  tokenized.reserve(examples.size());
  for (const LabeledDocument& ex : examples) {
    tokenized.push_back(tokenizer_.Tokenize(ex.text));
    vocab_.AddDocument(tokenized.back());
  }
  std::vector<SparseVector> docs;
  docs.reserve(examples.size());
  for (const auto& toks : tokenized) {
    docs.push_back(vocab_.TfIdfVector(toks));
  }
  const size_t n = docs.size();
  const size_t v = vocab_.size();

  // One full k-means++ seeding + Lloyd run. Returns the objective (total
  // intra-cluster cosine similarity); outputs into the member fields.
  auto run_once = [&](uint64_t seed, std::vector<std::vector<double>>* cents,
                      std::vector<int>* assign, int* iters,
                      bool* conv) -> double {
    Rng rng(seed);
    // k-means++ seeding over the document vectors.
    std::vector<size_t> seeds;
    seeds.push_back(rng.NextUint64(n));
    std::vector<double> min_dist(n, 2.0);  // cosine distance in [0, 2]
    while (seeds.size() < num_domains) {
      size_t last = seeds.back();
      for (size_t i = 0; i < n; ++i) {
        double d = 1.0 - docs[i].Cosine(docs[last]);
        min_dist[i] = std::min(min_dist[i], d);
      }
      std::vector<double> weights(n);
      for (size_t i = 0; i < n; ++i) weights[i] = min_dist[i] * min_dist[i];
      seeds.push_back(rng.NextDiscrete(weights));
    }
    cents->assign(num_domains, std::vector<double>(v, 0.0));
    for (size_t k = 0; k < num_domains; ++k) {
      for (const auto& [term, weight] : docs[seeds[k]].entries) {
        (*cents)[k][term] = weight;
      }
    }

    auto cosine = [&](const SparseVector& doc, size_t topic) {
      const std::vector<double>& c = (*cents)[topic];
      double dot = 0.0;
      for (const auto& [term, weight] : doc.entries) {
        if (term < c.size()) dot += weight * c[term];
      }
      return dot;
    };

    assign->assign(n, -1);
    *conv = false;
    for (*iters = 0; *iters < options_.max_iterations; ++*iters) {
      bool changed = false;
      for (size_t i = 0; i < n; ++i) {
        size_t best = 0;
        double best_sim = -2.0;
        for (size_t k = 0; k < num_domains; ++k) {
          double sim = cosine(docs[i], k);
          if (sim > best_sim) {
            best_sim = sim;
            best = k;
          }
        }
        if ((*assign)[i] != static_cast<int>(best)) {
          (*assign)[i] = static_cast<int>(best);
          changed = true;
        }
      }
      if (!changed) {
        *conv = true;
        break;
      }
      // Recompute centroids as normalized means; an emptied cluster is
      // re-seeded with a random document.
      for (auto& c : *cents) std::fill(c.begin(), c.end(), 0.0);
      std::vector<size_t> counts(num_domains, 0);
      for (size_t i = 0; i < n; ++i) {
        auto& c = (*cents)[(*assign)[i]];
        for (const auto& [term, weight] : docs[i].entries) c[term] += weight;
        ++counts[(*assign)[i]];
      }
      for (size_t k = 0; k < num_domains; ++k) {
        if (counts[k] == 0) {
          size_t replacement = rng.NextUint64(n);
          for (const auto& [term, weight] : docs[replacement].entries) {
            (*cents)[k][term] = weight;
          }
          continue;
        }
        double norm = 0.0;
        for (double x : (*cents)[k]) norm += x * x;
        norm = std::sqrt(norm);
        if (norm > 0.0) {
          for (double& x : (*cents)[k]) x /= norm;
        }
      }
    }
    double objective = 0.0;
    for (size_t i = 0; i < n; ++i) {
      objective += cosine(docs[i], static_cast<size_t>((*assign)[i]));
    }
    return objective;
  };

  // Keep the best of several restarts.
  double best_objective = -1.0;
  int restarts = std::max(options_.num_restarts, 1);
  for (int r = 0; r < restarts; ++r) {
    std::vector<std::vector<double>> cents;
    std::vector<int> assign;
    int iters = 0;
    bool conv = false;
    double objective = run_once(options_.seed + static_cast<uint64_t>(r) * 7919,
                                &cents, &assign, &iters, &conv);
    if (objective > best_objective) {
      best_objective = objective;
      centroids_ = std::move(cents);
      assignments_ = std::move(assign);
      iterations_ = iters;
      converged_ = conv;
    }
  }
  return Status::OK();
}

std::vector<double> TopicDiscovery::InterestVector(
    std::string_view text) const {
  const size_t k = centroids_.size();
  std::vector<double> result(k, k ? 1.0 / static_cast<double>(k) : 0.0);
  if (k == 0) return result;
  SparseVector doc = vocab_.TfIdfVector(tokenizer_.Tokenize(text));
  if (doc.entries.empty()) return result;
  std::vector<double> sims(k);
  for (size_t t = 0; t < k; ++t) sims[t] = Cosine(doc, t);
  double max_sim = *std::max_element(sims.begin(), sims.end());
  double temp = std::max(options_.softmax_temperature, 1e-9);
  double total = 0.0;
  for (size_t t = 0; t < k; ++t) {
    result[t] = std::exp((sims[t] - max_sim) / temp);
    total += result[t];
  }
  for (double& r : result) r /= total;
  return result;
}

std::vector<std::pair<std::string, double>> TopicDiscovery::TopTerms(
    size_t topic, size_t k) const {
  std::vector<std::pair<std::string, double>> terms;
  const std::vector<double>& c = centroids_[topic];
  for (TermId t = 0; t < c.size(); ++t) {
    if (c[t] > 0.0) terms.emplace_back(vocab_.token(t), c[t]);
  }
  std::sort(terms.begin(), terms.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (terms.size() > k) terms.resize(k);
  return terms;
}

double MatchedClusterAccuracy(const std::vector<int>& assignments,
                              const std::vector<int>& truth,
                              size_t num_classes) {
  if (assignments.size() != truth.size() || assignments.empty()) return 0.0;
  // Contingency counts cluster x class.
  std::vector<std::vector<size_t>> counts(
      num_classes, std::vector<size_t>(num_classes, 0));
  for (size_t i = 0; i < assignments.size(); ++i) {
    int a = assignments[i], t = truth[i];
    if (a < 0 || t < 0 || static_cast<size_t>(a) >= num_classes ||
        static_cast<size_t>(t) >= num_classes) {
      continue;
    }
    ++counts[a][t];
  }
  // Greedy one-to-one matching by descending overlap.
  struct Cell {
    size_t cluster, cls, count;
  };
  std::vector<Cell> cells;
  for (size_t a = 0; a < num_classes; ++a) {
    for (size_t t = 0; t < num_classes; ++t) {
      if (counts[a][t] > 0) cells.push_back({a, t, counts[a][t]});
    }
  }
  std::sort(cells.begin(), cells.end(), [](const Cell& x, const Cell& y) {
    return x.count > y.count;
  });
  std::vector<bool> cluster_used(num_classes, false), class_used(num_classes, false);
  size_t matched = 0;
  for (const Cell& c : cells) {
    if (cluster_used[c.cluster] || class_used[c.cls]) continue;
    cluster_used[c.cluster] = true;
    class_used[c.cls] = true;
    matched += c.count;
  }
  return static_cast<double>(matched) / static_cast<double>(assignments.size());
}

}  // namespace mass
