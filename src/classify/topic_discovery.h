// Unsupervised topic discovery — the paper's "[domains] automatically
// discovered using existing topic discovery techniques [6]" option.
// Spherical k-means over L2-normalized TF-IDF post vectors with k-means++
// seeding; the topic posterior is a temperature softmax over centroid
// cosines, so the result plugs into MassEngine exactly like the
// supervised miners (it implements InterestMiner; Train() ignores the
// labels and clusters the texts).
#pragma once

#include <string>
#include <vector>

#include "classify/interest_miner.h"
#include "common/rng.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace mass {

/// Topic discovery parameters.
struct TopicDiscoveryOptions {
  int max_iterations = 50;
  /// Independent k-means++ restarts; the run with the highest total
  /// intra-cluster similarity wins. Protects against bad local optima.
  int num_restarts = 4;
  uint64_t seed = 5;
  /// Softmax temperature mapping cosine similarities to a posterior.
  double softmax_temperature = 0.1;
  TokenizerOptions tokenizer;
};

/// Spherical k-means topic model.
class TopicDiscovery : public InterestMiner {
 public:
  TopicDiscovery() : TopicDiscovery(TopicDiscoveryOptions()) {}
  explicit TopicDiscovery(TopicDiscoveryOptions options);

  /// Clusters the example texts into `num_domains` topics. Labels in
  /// `examples` are ignored — discovery is unsupervised.
  Status Train(const std::vector<LabeledDocument>& examples,
               size_t num_domains) override;

  /// Posterior over discovered topics for `text` (sums to 1).
  std::vector<double> InterestVector(std::string_view text) const override;

  size_t num_domains() const override { return centroids_.size(); }
  std::string name() const override { return "kmeans-topics"; }

  /// Hard cluster assignment of each training document (by input order).
  const std::vector<int>& assignments() const { return assignments_; }

  /// k-means iterations actually run and whether assignment stabilized.
  int iterations() const { return iterations_; }
  bool converged() const { return converged_; }

  /// The `k` highest-weight terms of one topic centroid — the topic's
  /// human-readable description.
  std::vector<std::pair<std::string, double>> TopTerms(size_t topic,
                                                       size_t k) const;

 private:
  double Cosine(const SparseVector& doc, size_t topic) const;

  TopicDiscoveryOptions options_;
  Tokenizer tokenizer_;
  Vocabulary vocab_;
  std::vector<std::vector<double>> centroids_;  // dense, L2-normalized
  std::vector<int> assignments_;
  int iterations_ = 0;
  bool converged_ = false;
};

/// Greedy one-to-one matching of discovered topics to ground-truth labels
/// by overlap count; returns accuracy under that matching ("cluster
/// purity with matching"). Used to evaluate discovery quality against the
/// generator's planted domains.
double MatchedClusterAccuracy(const std::vector<int>& assignments,
                              const std::vector<int>& truth,
                              size_t num_classes);

}  // namespace mass
