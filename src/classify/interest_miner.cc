#include "classify/interest_miner.h"

#include <algorithm>

namespace mass {

int InterestMiner::Predict(std::string_view text) const {
  std::vector<double> iv = InterestVector(text);
  if (iv.empty()) return -1;
  return static_cast<int>(
      std::max_element(iv.begin(), iv.end()) - iv.begin());
}

std::vector<LabeledDocument> LabeledPostsFromCorpus(const Corpus& corpus,
                                                    size_t max_per_domain) {
  std::vector<LabeledDocument> out;
  std::vector<size_t> per_domain;
  for (const Post& p : corpus.posts()) {
    if (p.true_domain < 0) continue;
    size_t d = static_cast<size_t>(p.true_domain);
    if (per_domain.size() <= d) per_domain.resize(d + 1, 0);
    if (max_per_domain > 0 && per_domain[d] >= max_per_domain) continue;
    ++per_domain[d];
    out.push_back(LabeledDocument{p.title + " " + p.content, p.true_domain});
  }
  return out;
}

}  // namespace mass
