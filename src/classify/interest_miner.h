// InterestMiner: the pluggable interface that maps a text to a distribution
// over interest domains — iv(b_i, d_k, C_t) in paper Eq. 5. MASS ships a
// multinomial naive Bayes implementation (the paper's choice, ref [7]) and
// a TF-IDF centroid alternative, matching "other interests mining methods
// can also be plugged into our system".
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "model/corpus.h"

namespace mass {

/// One labeled training example.
struct LabeledDocument {
  std::string text;
  int domain = -1;
};

/// Interface: train on labeled documents, then produce per-domain
/// probability vectors for unseen text.
class InterestMiner {
 public:
  virtual ~InterestMiner() = default;

  /// Trains on the given examples. `num_domains` fixes the output
  /// dimensionality; every example's domain must lie in [0, num_domains).
  virtual Status Train(const std::vector<LabeledDocument>& examples,
                       size_t num_domains) = 0;

  /// Returns a probability vector of length num_domains summing to 1.
  /// Requires a successful Train() first.
  virtual std::vector<double> InterestVector(std::string_view text) const = 0;

  /// Argmax of InterestVector().
  int Predict(std::string_view text) const;

  /// Number of domains fixed at training time (0 before Train()).
  virtual size_t num_domains() const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;
};

/// Builds a training set from the corpus posts that carry ground-truth
/// domain labels (synthetic corpora always do). `max_per_domain` caps class
/// imbalance; 0 means unlimited.
std::vector<LabeledDocument> LabeledPostsFromCorpus(const Corpus& corpus,
                                                    size_t max_per_domain = 0);

}  // namespace mass
