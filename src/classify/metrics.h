// Classifier evaluation: accuracy, per-class precision/recall/F1, macro-F1,
// and a confusion matrix. Used by tests and by bench_classifier (S3).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mass {

/// Confusion-matrix based classification report.
class ClassificationReport {
 public:
  explicit ClassificationReport(size_t num_classes);

  /// Records one prediction.
  void Add(int truth, int predicted);

  size_t total() const { return total_; }
  double Accuracy() const;
  double Precision(size_t cls) const;
  double Recall(size_t cls) const;
  double F1(size_t cls) const;
  double MacroF1() const;

  /// matrix[truth][predicted].
  size_t Count(size_t truth, size_t predicted) const;

  /// Multi-line textual report with per-class rows.
  std::string ToString(const std::vector<std::string>& class_names = {}) const;

 private:
  size_t num_classes_;
  size_t total_ = 0;
  size_t correct_ = 0;
  std::vector<std::vector<size_t>> matrix_;
};

}  // namespace mass
