// TF-IDF centroid classifier (Rocchio-style): the alternative InterestMiner
// demonstrating the paper's "other interests mining methods [8], [9] can
// also be plugged into our system".
#pragma once

#include <vector>

#include "classify/interest_miner.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace mass {

/// Classifies by cosine similarity to per-domain TF-IDF centroids.
///
/// The interest vector is the softmax of the similarity scores with a
/// configurable temperature — sharper temperatures approach a hard argmax.
class CentroidClassifier : public InterestMiner {
 public:
  struct Options {
    double softmax_temperature = 0.1;
    TokenizerOptions tokenizer;
  };

  CentroidClassifier() : CentroidClassifier(Options()) {}
  explicit CentroidClassifier(Options options);

  Status Train(const std::vector<LabeledDocument>& examples,
               size_t num_domains) override;
  std::vector<double> InterestVector(std::string_view text) const override;
  size_t num_domains() const override { return centroids_.size(); }
  std::string name() const override { return "tfidf-centroid"; }

  /// Cosine similarity of `text` to domain `d`'s centroid; for tests.
  double Similarity(std::string_view text, size_t d) const;

 private:
  Options options_;
  Tokenizer tokenizer_;
  Vocabulary vocab_;
  std::vector<SparseVector> centroids_;
};

}  // namespace mass
