#include "classify/metrics.h"

#include "common/string_util.h"

namespace mass {

ClassificationReport::ClassificationReport(size_t num_classes)
    : num_classes_(num_classes),
      matrix_(num_classes, std::vector<size_t>(num_classes, 0)) {}

void ClassificationReport::Add(int truth, int predicted) {
  if (truth < 0 || static_cast<size_t>(truth) >= num_classes_) return;
  if (predicted < 0 || static_cast<size_t>(predicted) >= num_classes_) return;
  ++matrix_[truth][predicted];
  ++total_;
  if (truth == predicted) ++correct_;
}

double ClassificationReport::Accuracy() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(correct_) / static_cast<double>(total_);
}

double ClassificationReport::Precision(size_t cls) const {
  size_t tp = matrix_[cls][cls];
  size_t predicted = 0;
  for (size_t t = 0; t < num_classes_; ++t) predicted += matrix_[t][cls];
  return predicted == 0 ? 0.0
                        : static_cast<double>(tp) / static_cast<double>(predicted);
}

double ClassificationReport::Recall(size_t cls) const {
  size_t tp = matrix_[cls][cls];
  size_t actual = 0;
  for (size_t p = 0; p < num_classes_; ++p) actual += matrix_[cls][p];
  return actual == 0 ? 0.0
                     : static_cast<double>(tp) / static_cast<double>(actual);
}

double ClassificationReport::F1(size_t cls) const {
  double p = Precision(cls), r = Recall(cls);
  return (p + r) <= 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ClassificationReport::MacroF1() const {
  if (num_classes_ == 0) return 0.0;
  double sum = 0.0;
  for (size_t c = 0; c < num_classes_; ++c) sum += F1(c);
  return sum / static_cast<double>(num_classes_);
}

size_t ClassificationReport::Count(size_t truth, size_t predicted) const {
  return matrix_[truth][predicted];
}

std::string ClassificationReport::ToString(
    const std::vector<std::string>& class_names) const {
  std::string out = StrFormat("accuracy %.4f over %zu examples\n", Accuracy(),
                              total_);
  for (size_t c = 0; c < num_classes_; ++c) {
    std::string name = c < class_names.size() ? class_names[c]
                                              : StrFormat("class%zu", c);
    out += StrFormat("  %-14s P %.3f R %.3f F1 %.3f\n", name.c_str(),
                     Precision(c), Recall(c), F1(c));
  }
  out += StrFormat("  macro-F1 %.4f\n", MacroF1());
  return out;
}

}  // namespace mass
