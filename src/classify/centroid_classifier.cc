#include "classify/centroid_classifier.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace mass {

CentroidClassifier::CentroidClassifier(Options options)
    : options_(options), tokenizer_(options.tokenizer) {}

Status CentroidClassifier::Train(const std::vector<LabeledDocument>& examples,
                                 size_t num_domains) {
  if (num_domains == 0) {
    return Status::InvalidArgument("num_domains must be positive");
  }
  if (examples.empty()) {
    return Status::InvalidArgument("no training examples");
  }
  vocab_ = Vocabulary();
  // First pass: document frequencies.
  std::vector<std::vector<std::string>> tokenized;
  tokenized.reserve(examples.size());
  for (const LabeledDocument& ex : examples) {
    if (ex.domain < 0 || static_cast<size_t>(ex.domain) >= num_domains) {
      return Status::InvalidArgument(
          StrFormat("example domain %d out of range [0,%zu)", ex.domain,
                    num_domains));
    }
    tokenized.push_back(tokenizer_.Tokenize(ex.text));
    vocab_.AddDocument(tokenized.back());
  }
  // Second pass: accumulate normalized TF-IDF vectors per domain.
  centroids_.assign(num_domains, {});
  for (size_t i = 0; i < examples.size(); ++i) {
    SparseVector v = vocab_.TfIdfVector(tokenized[i]);
    centroids_[examples[i].domain].Add(v);
  }
  for (SparseVector& c : centroids_) {
    double n = c.Norm();
    if (n > 0.0) c.Scale(1.0 / n);
  }
  return Status::OK();
}

double CentroidClassifier::Similarity(std::string_view text, size_t d) const {
  SparseVector v = vocab_.TfIdfVector(tokenizer_.Tokenize(text));
  return v.Cosine(centroids_[d]);
}

std::vector<double> CentroidClassifier::InterestVector(
    std::string_view text) const {
  size_t n = centroids_.size();
  std::vector<double> result(n, n ? 1.0 / n : 0.0);
  if (n == 0) return result;
  SparseVector v = vocab_.TfIdfVector(tokenizer_.Tokenize(text));
  if (v.entries.empty()) return result;  // nothing known: uniform

  std::vector<double> sims(n);
  for (size_t d = 0; d < n; ++d) sims[d] = v.Cosine(centroids_[d]);
  double max_sim = *std::max_element(sims.begin(), sims.end());
  double total = 0.0;
  double temp = options_.softmax_temperature > 1e-9
                    ? options_.softmax_temperature
                    : 1e-9;
  for (size_t d = 0; d < n; ++d) {
    result[d] = std::exp((sims[d] - max_sim) / temp);
    total += result[d];
  }
  for (double& r : result) r /= total;
  return result;
}

}  // namespace mass
