// Replicated Table-I study: regenerates the blogosphere under several
// seeds and reports per-cell mean and standard deviation, so the headline
// comparison is not an artifact of one synthetic world.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "synth/generator.h"
#include "userstudy/table1.h"

namespace mass {

/// Table I with dispersion across replicated corpora.
struct ReplicatedTable1 {
  std::vector<std::string> domain_names;
  struct Row {
    std::string method;
    std::vector<double> mean;    ///< per domain
    std::vector<double> stddev;  ///< per domain (population std)
  };
  std::vector<Row> rows;
  size_t replications = 0;

  /// Formats as "mean ±std" cells.
  std::string ToString() const;
};

/// Runs the Table-I study once per seed (each seed generates a fresh
/// corpus from `generator` with that seed) and aggregates.
Result<ReplicatedTable1> RunReplicatedTable1(
    const std::vector<uint64_t>& corpus_seeds,
    const synth::GeneratorOptions& generator, const DomainSet& domain_set,
    const Table1Options& options = {});

}  // namespace mass
