// Ground-truth ranking quality metrics. The judge panel answers "would a
// human pick these bloggers?"; these metrics answer the finer question
// "how close is the produced *ordering* to the planted ground truth?" —
// sensitive enough to separate parameter settings and facet ablations
// whose top-3 sets coincide (benches A1-A3).
//
// Ground-truth relevance of blogger b for domain d:
//   gain(b, d) = true_expertise(b) * true_interests(b)[d] * authenticity(b)
// and for the general ranking: gain(b) = true_expertise(b) * authenticity(b),
// where authenticity discounts bloggers whose posts are largely carbon
// copies (paper §II, following [2]: reproduced content carries little
// influence): authenticity = 1 - 0.7 * copied_post_fraction.
#pragma once

#include <cstddef>
#include <vector>

#include "core/influence_engine.h"
#include "model/corpus.h"

namespace mass {

/// Ground-truth gain vector for one domain (or the general gain with
/// domain = -1). Indexed by blogger id. Requires built indexes.
std::vector<double> GroundTruthGains(const Corpus& corpus, int domain);

/// authenticity(b) = 1 - 0.7 * (copied posts / posts); 1.0 for bloggers
/// without posts. Requires built indexes.
double AuthenticityOf(const Corpus& corpus, BloggerId b);

/// NDCG@k of a ranking against arbitrary non-negative gains.
/// Returns 1.0 for a perfect ordering, and 0 when the ideal DCG is 0.
double NdcgAtK(const std::vector<ScoredBlogger>& ranking,
               const std::vector<double>& gains, size_t k);

/// Spearman rank correlation between two score vectors over the same id
/// space (average ranks for ties). Returns 0 for degenerate inputs.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Convenience: mean NDCG@k of a published snapshot's per-domain rankings
/// against the planted ground truth, averaged over all domains. The
/// ground truth lives in the corpus (planted generator fields the
/// snapshot intentionally does not carry), so both are required.
double MeanDomainNdcg(const AnalysisSnapshot& snapshot, const Corpus& corpus,
                      size_t k);

/// Engine convenience overload: pins engine.CurrentSnapshot() and uses
/// the engine's corpus. Returns 0 when nothing is published yet.
double MeanDomainNdcg(const MassEngine& engine, size_t k);

}  // namespace mass
