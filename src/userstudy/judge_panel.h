// Simulated user study reproducing the paper's evaluation protocol: "we
// invite 10 users ... who compare the recommendation performance of top 3
// influential bloggers ... and ask users to score them from 1 to 5
// according to their understanding of a specific application scenario,
// e.g. 'Suppose you are the sales manager in Nike, which blogger will you
// choose to send advertisement to?'"
//
// Substitution note (see DESIGN.md): real judges reward how well a
// recommended blogger fits the scenario's domain and how credible the
// blogger is. The simulated rubric scores exactly that, from the ground
// truth the synthetic generator planted:
//
//   rating = 1 + 4 * (w * expertise * authenticity
//                     + (1 - w) * interest_in_domain)
//            + judge_bias + noise,              clamped to [1, 5]
//
// where authenticity discounts bloggers who mostly repost copied content
// (a human inspecting the blog URL notices reposts immediately),
//
// with per-judge bias and per-rating noise drawn deterministically from
// the (judge, blogger, domain) triple, so studies are reproducible and
// order-independent.
#pragma once

#include <cstdint>
#include <vector>

#include "core/influence_engine.h"
#include "model/corpus.h"

namespace mass {

/// User-study parameters. Defaults follow the paper (10 judges, top-3).
struct UserStudyOptions {
  size_t num_judges = 10;
  size_t top_k = 3;
  uint64_t seed = 123;
  /// Stddev of a judge's systematic bias (some judges score high).
  double judge_bias_stddev = 0.25;
  /// Stddev of per-rating noise.
  double rating_noise_stddev = 0.35;
  /// Rubric weight of overall credibility (expertise) vs domain fit.
  double expertise_weight = 0.5;
};

/// A reproducible panel of simulated judges over one corpus.
class JudgePanel {
 public:
  /// `corpus` must carry ground truth (true_expertise / true_interests)
  /// and outlive the panel.
  JudgePanel(const Corpus* corpus, UserStudyOptions options = {});

  /// Rating in [1, 5] that judge `judge` gives blogger `b` for an
  /// advertisement scenario in `domain`. Deterministic in
  /// (seed, judge, b, domain).
  double Rate(size_t judge, BloggerId b, size_t domain) const;

  /// Average applicable score of a recommendation list for `domain`:
  /// mean over all judges and the first top_k recommended bloggers —
  /// exactly the aggregation behind each Table I cell.
  double AverageScore(const std::vector<ScoredBlogger>& recommendations,
                      size_t domain) const;

  const UserStudyOptions& options() const { return options_; }

 private:
  const Corpus* corpus_;
  UserStudyOptions options_;
  std::vector<double> judge_bias_;
  std::vector<double> authenticity_;  // per blogger, from planted copies
};

}  // namespace mass
