#include "userstudy/judge_panel.h"

#include <algorithm>

#include "common/rng.h"
#include "userstudy/ranking_quality.h"

namespace mass {

JudgePanel::JudgePanel(const Corpus* corpus, UserStudyOptions options)
    : corpus_(corpus), options_(options) {
  Rng rng(options_.seed);
  judge_bias_.resize(options_.num_judges);
  for (double& bias : judge_bias_) {
    bias = rng.NextGaussian(0.0, options_.judge_bias_stddev);
  }
  authenticity_.resize(corpus_->num_bloggers());
  for (BloggerId b = 0; b < corpus_->num_bloggers(); ++b) {
    authenticity_[b] = AuthenticityOf(*corpus_, b);
  }
}

double JudgePanel::Rate(size_t judge, BloggerId b, size_t domain) const {
  const Blogger& blogger = corpus_->blogger(b);
  double interest = domain < blogger.true_interests.size()
                        ? blogger.true_interests[domain]
                        : 0.0;
  double w = options_.expertise_weight;
  double fit = w * blogger.true_expertise * authenticity_[b] +
               (1.0 - w) * interest;
  // Deterministic per-(judge, blogger, domain) noise stream so evaluation
  // order never changes a rating.
  uint64_t mix = options_.seed;
  mix ^= 0x9E3779B97F4A7C15ULL * (judge + 1);
  mix ^= 0xC2B2AE3D27D4EB4FULL * (static_cast<uint64_t>(b) + 1);
  mix ^= 0x165667B19E3779F9ULL * (static_cast<uint64_t>(domain) + 1);
  Rng rng(mix);
  double rating = 1.0 + 4.0 * fit + judge_bias_[judge % judge_bias_.size()] +
                  rng.NextGaussian(0.0, options_.rating_noise_stddev);
  return std::clamp(rating, 1.0, 5.0);
}

double JudgePanel::AverageScore(
    const std::vector<ScoredBlogger>& recommendations, size_t domain) const {
  size_t k = std::min(options_.top_k, recommendations.size());
  if (k == 0 || options_.num_judges == 0) return 0.0;
  double total = 0.0;
  for (size_t j = 0; j < options_.num_judges; ++j) {
    for (size_t i = 0; i < k; ++i) {
      total += Rate(j, recommendations[i].id, domain);
    }
  }
  return total / static_cast<double>(options_.num_judges * k);
}

}  // namespace mass
