#include "userstudy/ranking_quality.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mass {

double AuthenticityOf(const Corpus& corpus, BloggerId b) {
  const std::vector<PostId>& posts = corpus.PostsBy(b);
  if (posts.empty()) return 1.0;
  size_t copies = 0;
  for (PostId p : posts) {
    if (corpus.post(p).true_copy) ++copies;
  }
  return 1.0 - 0.7 * static_cast<double>(copies) /
                   static_cast<double>(posts.size());
}

std::vector<double> GroundTruthGains(const Corpus& corpus, int domain) {
  std::vector<double> gains(corpus.num_bloggers(), 0.0);
  for (BloggerId b = 0; b < corpus.num_bloggers(); ++b) {
    const Blogger& blogger = corpus.blogger(b);
    double base = blogger.true_expertise * AuthenticityOf(corpus, b);
    if (domain < 0) {
      gains[b] = base;
    } else if (static_cast<size_t>(domain) < blogger.true_interests.size()) {
      gains[b] = base * blogger.true_interests[static_cast<size_t>(domain)];
    }
  }
  return gains;
}

double NdcgAtK(const std::vector<ScoredBlogger>& ranking,
               const std::vector<double>& gains, size_t k) {
  double dcg = 0.0;
  for (size_t i = 0; i < std::min(k, ranking.size()); ++i) {
    BloggerId b = ranking[i].id;
    double gain = b < gains.size() ? gains[b] : 0.0;
    dcg += gain / std::log2(static_cast<double>(i) + 2.0);
  }
  // Ideal DCG at the *requested* k: a ranking shorter than k is
  // penalized for the items it failed to return.
  std::vector<double> sorted = gains;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double idcg = 0.0;
  for (size_t i = 0; i < std::min(k, sorted.size()); ++i) {
    idcg += sorted[i] / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

namespace {

// Average ranks (1-based) with tie handling.
std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                      1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  std::vector<double> ra = AverageRanks(a);
  std::vector<double> rb = AverageRanks(b);
  const double n = static_cast<double>(a.size());
  double mean = (n + 1.0) / 2.0;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = ra[i] - mean;
    double db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double MeanDomainNdcg(const AnalysisSnapshot& snapshot, const Corpus& corpus,
                      size_t k) {
  double total = 0.0;
  size_t counted = 0;
  for (size_t d = 0; d < snapshot.num_domains; ++d) {
    std::vector<double> gains = GroundTruthGains(corpus, static_cast<int>(d));
    double ideal = 0.0;
    for (double g : gains) ideal += g;
    if (ideal <= 0.0) continue;  // domain absent from ground truth
    Result<std::vector<ScoredBlogger>> top = snapshot.TopKDomain(d, k);
    if (!top.ok()) continue;
    total += NdcgAtK(*top, gains, k);
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

double MeanDomainNdcg(const MassEngine& engine, size_t k) {
  std::shared_ptr<const AnalysisSnapshot> snapshot = engine.CurrentSnapshot();
  if (snapshot == nullptr) return 0.0;
  return MeanDomainNdcg(*snapshot, engine.corpus(), k);
}

}  // namespace mass
