#include "userstudy/table1.h"

#include <memory>

#include "classify/naive_bayes.h"
#include "common/string_util.h"
#include "recommend/baselines.h"

namespace mass {

std::string Table1Result::ToString() const {
  std::string out = StrFormat("%-18s", "Avg Applicable");
  for (const std::string& name : domain_names) {
    out += StrFormat(" %10s", name.c_str());
  }
  out += "\n";
  for (const Table1Row& row : rows) {
    out += StrFormat("%-18s", row.method.c_str());
    for (double s : row.scores) out += StrFormat(" %10.2f", s);
    out += "\n";
  }
  return out;
}

Result<Table1Result> RunTable1Study(const Corpus& corpus,
                                    const DomainSet& domain_set,
                                    const Table1Options& options) {
  if (!corpus.indexes_built()) {
    return Status::FailedPrecondition("corpus indexes not built");
  }
  for (size_t d : options.domains) {
    if (d >= domain_set.size()) {
      return Status::InvalidArgument(
          StrFormat("domain %zu out of range [0,%zu)", d, domain_set.size()));
    }
  }

  // MASS pipeline: train the interest miner, analyze the corpus.
  std::unique_ptr<NaiveBayesClassifier> miner;
  if (options.use_classifier) {
    miner = std::make_unique<NaiveBayesClassifier>();
    MASS_RETURN_IF_ERROR(miner->Train(LabeledPostsFromCorpus(corpus),
                                      domain_set.size()));
  }
  MassEngine engine(&corpus, options.engine);
  MASS_RETURN_IF_ERROR(engine.Analyze(miner.get(), domain_set.size()));
  // Rank from the published snapshot — the same surface the serving layer
  // exposes, so the study scores exactly what production queries return.
  std::shared_ptr<const AnalysisSnapshot> snapshot = engine.CurrentSnapshot();

  // Baseline rankings are domain-blind: one global top-k each.
  const size_t k = options.study.top_k;
  GeneralInfluenceBaseline general;
  LiveIndexBaseline live_index;
  MASS_ASSIGN_OR_RETURN(std::vector<ScoredBlogger> general_top,
                        general.Rank(corpus, k));
  MASS_ASSIGN_OR_RETURN(std::vector<ScoredBlogger> live_top,
                        live_index.Rank(corpus, k));

  JudgePanel panel(&corpus, options.study);
  Table1Result result;
  result.domains = options.domains;
  for (size_t d : options.domains) {
    result.domain_names.push_back(domain_set.name(d));
  }

  Table1Row general_row{"General", {}};
  Table1Row live_row{"Live Index", {}};
  Table1Row mass_row{"Domain Specific", {}};
  for (size_t d : options.domains) {
    general_row.scores.push_back(panel.AverageScore(general_top, d));
    live_row.scores.push_back(panel.AverageScore(live_top, d));
    MASS_ASSIGN_OR_RETURN(std::vector<ScoredBlogger> mass_top,
                          snapshot->TopKDomain(d, k));
    mass_row.scores.push_back(panel.AverageScore(mass_top, d));
  }
  result.rows = {general_row, live_row, mass_row};
  return result;
}

}  // namespace mass
