#include "userstudy/replication.h"

#include <cmath>

#include "common/string_util.h"

namespace mass {

std::string ReplicatedTable1::ToString() const {
  std::string out = StrFormat("%-18s", StrFormat("Avg (n=%zu runs)",
                                                 replications).c_str());
  for (const std::string& name : domain_names) {
    out += StrFormat(" %14s", name.c_str());
  }
  out += "\n";
  for (const Row& row : rows) {
    out += StrFormat("%-18s", row.method.c_str());
    for (size_t d = 0; d < row.mean.size(); ++d) {
      out += StrFormat("   %5.2f +-%4.2f", row.mean[d], row.stddev[d]);
    }
    out += "\n";
  }
  return out;
}

Result<ReplicatedTable1> RunReplicatedTable1(
    const std::vector<uint64_t>& corpus_seeds,
    const synth::GeneratorOptions& generator, const DomainSet& domain_set,
    const Table1Options& options) {
  if (corpus_seeds.empty()) {
    return Status::InvalidArgument("need at least one corpus seed");
  }

  // scores[run][row][domain]
  std::vector<std::vector<std::vector<double>>> all_scores;
  std::vector<std::string> methods;
  ReplicatedTable1 out;

  for (uint64_t seed : corpus_seeds) {
    synth::GeneratorOptions gen = generator;
    gen.seed = seed;
    MASS_ASSIGN_OR_RETURN(Corpus corpus, synth::GenerateBlogosphere(gen));
    MASS_ASSIGN_OR_RETURN(Table1Result one,
                          RunTable1Study(corpus, domain_set, options));
    if (methods.empty()) {
      for (const Table1Row& row : one.rows) methods.push_back(row.method);
      out.domain_names = one.domain_names;
    }
    std::vector<std::vector<double>> run;
    for (const Table1Row& row : one.rows) run.push_back(row.scores);
    all_scores.push_back(std::move(run));
  }

  const size_t runs = all_scores.size();
  const size_t num_rows = methods.size();
  const size_t num_domains = out.domain_names.size();
  out.replications = runs;
  for (size_t r = 0; r < num_rows; ++r) {
    ReplicatedTable1::Row row;
    row.method = methods[r];
    row.mean.assign(num_domains, 0.0);
    row.stddev.assign(num_domains, 0.0);
    for (size_t d = 0; d < num_domains; ++d) {
      double sum = 0.0;
      for (size_t run = 0; run < runs; ++run) {
        sum += all_scores[run][r][d];
      }
      double mean = sum / static_cast<double>(runs);
      double var = 0.0;
      for (size_t run = 0; run < runs; ++run) {
        double diff = all_scores[run][r][d] - mean;
        var += diff * diff;
      }
      row.mean[d] = mean;
      row.stddev[d] = std::sqrt(var / static_cast<double>(runs));
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace mass
