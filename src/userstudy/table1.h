// End-to-end harness for paper Table I: "USER EVALUATION OF AVERAGE
// APPLICABLE SCORES FOR INFLUENTIAL BLOGGERS (GENERAL VS. LIVE INDEX VS.
// DOMAIN SPECIFIC)" over the Travel, Art and Sports domains.
#pragma once

#include <string>
#include <vector>

#include "classify/interest_miner.h"
#include "common/result.h"
#include "core/engine_options.h"
#include "model/corpus.h"
#include "userstudy/judge_panel.h"

namespace mass {

/// One row of the table: a method and its per-domain average scores.
struct Table1Row {
  std::string method;
  std::vector<double> scores;  ///< aligned with Table1Result::domains
};

/// The regenerated table.
struct Table1Result {
  std::vector<size_t> domains;            ///< evaluated domain ids
  std::vector<std::string> domain_names;  ///< their display names
  std::vector<Table1Row> rows;            ///< General, Live Index, Domain Specific

  /// Formats like the paper's table.
  std::string ToString() const;
};

/// Parameters of one Table-I run.
struct Table1Options {
  /// Domains evaluated; the paper uses Travel (0), Art (8), Sports (6).
  std::vector<size_t> domains = {0, 8, 6};
  EngineOptions engine;
  UserStudyOptions study;
  /// When true, train the naive Bayes miner on the corpus's labeled posts;
  /// when false, use ground-truth one-hot post domains (solver-only mode).
  bool use_classifier = true;
};

/// Runs the full study on `corpus` (must carry ground truth): ranks with
/// the General and Live Index baselines and with MASS's domain-specific
/// scores, then scores each method's top-k with the judge panel.
Result<Table1Result> RunTable1Study(const Corpus& corpus,
                                    const DomainSet& domain_set,
                                    const Table1Options& options = {});

}  // namespace mass
